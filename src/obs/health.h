// Fleet health snapshots — periodic JSONL for long-run monitoring.
//
// A health stream is the third observability output class: metrics are a
// final aggregate, traces are a full timeline, and health snapshots are a
// cheap fixed-schema heartbeat a dashboard (or `tail -f` + jq) can follow
// while a multi-hour fleet run is still in flight. One line per snapshot:
//
//   {"t_ms":300000,"arrivals":210,"router_decisions_per_s":0.7,
//    "shards":[{"shard":0,"servers":2,"running":5,"queued":1,
//               "pending_events":7,"routed":62,"mean_gpu_util":0.41},...],
//    "slo":[{"class":"moba","runs":10,"fps_attainment_pct":90,
//            "latency_attainment_pct":100},...],
//    "stage_costs":[{"stage":"rng_draws","calls":123,"total_ns":456},...]}
//
// `slo` and `stage_costs` reuse the exact array encoders the fleet report
// uses, so post-processing scripts share one schema. Stage costs are
// cumulative since run start (diff consecutive lines for rates); router
// decisions/s is over the interval since the previous snapshot; the shard
// rows are instantaneous. The writers are deterministic given the
// snapshot contents (doubles via json_number).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.h"
#include "obs/profiler.h"
#include "obs/slo.h"

namespace cocg::obs {

/// Instantaneous per-shard occupancy (one row even for single-platform
/// runs, where shard is 0).
struct HealthShard {
  int shard = 0;
  std::size_t servers = 0;
  std::size_t running = 0;         ///< live sessions
  std::size_t queued = 0;          ///< admission queue depth
  std::size_t pending_events = 0;  ///< engine event-queue depth
  std::uint64_t routed = 0;        ///< arrivals routed here so far
  double mean_gpu_util = 0.0;      ///< mean max-dimension GPU fraction
};

/// Work-stealing executor counters (fleet steal runner). `present` gates
/// the field in the JSONL line — lockstep runs keep the legacy schema
/// byte-for-byte.
struct HealthExecutor {
  bool present = false;
  std::uint64_t jobs_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_ns = 0;
  std::uint64_t idle_waits = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t syncs = 0;
};

/// Quiescence-engine counters (platform resolve cache + macro-tick
/// fast-forward). `present` gates the field like HealthExecutor — runs with
/// incremental resolve disabled keep the legacy schema byte-for-byte.
struct HealthQuiescence {
  bool present = false;
  std::uint64_t ticks_skipped = 0;
  std::uint64_t fast_forward_windows = 0;
  std::uint64_t resolve_cache_hits = 0;
  std::uint64_t resolve_cache_misses = 0;
};

struct HealthSnapshot {
  TimeMs t = 0;
  std::uint64_t arrivals = 0;  ///< cumulative arrivals generated
  double router_decisions_per_s = 0.0;
  std::vector<HealthShard> shards;
  std::vector<SloAttainment> slo;
  StageProfile stage_costs{};  ///< cumulative; zeros when profiling is off
  HealthExecutor executor{};   ///< cumulative; emitted only when present
  HealthQuiescence quiescence{};  ///< cumulative; emitted only when present
};

/// Append one JSONL line (newline included).
void write_health_snapshot(const HealthSnapshot& s, std::ostream& os);

/// Stream prologue: one JSONL line stating the heartbeat cadence, so a
/// consumer learns the interval without diffing the first two snapshots:
///   {"health_header":1,"interval_ms":30000}
/// Tools write it once before the first snapshot.
void write_health_header(DurationMs interval_ms, std::ostream& os);

}  // namespace cocg::obs
