#include "obs/domain.h"

namespace cocg::obs {

namespace {
thread_local Domain* tls_domain = nullptr;
}  // namespace

void Domain::reset() {
  metrics.reset_values();
  events.clear();
  trace.clear();
  profiler.reset();
}

Domain& global_domain() {
  static Domain* d = new Domain();  // never freed
  return *d;
}

Domain& current_domain() {
  return tls_domain != nullptr ? *tls_domain : global_domain();
}

ScopedDomain::ScopedDomain(Domain& d) : prev_(tls_domain) { tls_domain = &d; }

ScopedDomain::~ScopedDomain() { tls_domain = prev_; }

// The accessor functions the rest of the system uses live here so that all
// three resolve through the same thread-local indirection.
MetricsRegistry& metrics() { return current_domain().metrics; }

EventLog& events() { return current_domain().events; }

TraceBuilder& trace() { return current_domain().trace; }

}  // namespace cocg::obs
