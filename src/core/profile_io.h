// GameProfile persistence.
//
// Profiling and training "only need to be performed once" (§IV-B1) — the
// artifacts must therefore outlive the process. Profiles serialize to a
// line-oriented text format (versioned, human-diffable) so operators can
// ship them alongside game images and load them on any scheduler node.
#pragma once

#include <iosfwd>
#include <string>

#include "common/textio.h"
#include "core/game_profile.h"

namespace cocg::core {

/// Serialize a profile (doubles at max_digits10 → exact round trip).
/// Throws std::runtime_error on I/O failure.
void save_profile(const GameProfile& profile, const std::string& path);
void write_profile(const GameProfile& profile, std::ostream& os);

/// Deserialize. Throws std::runtime_error with a line/field diagnostic on
/// I/O or format errors.
GameProfile load_profile(const std::string& path);
GameProfile read_profile(std::istream& is);
/// Embedded form: consumes one profile block from an outer artifact's
/// reader (used by core/model_bank bundles).
GameProfile read_profile(LineReader& r);

}  // namespace cocg::core
