// Offline per-game pipeline: lab traces → profile → trained predictor.
//
// "Contention feature profiling and model training only need to be
// performed once" (§IV-B1). A TrainedGame bundles everything CoCG's online
// path needs about one title; the CocgScheduler takes one per game.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/frame_profiler.h"
#include "core/game_profile.h"
#include "core/stage_predictor.h"
#include "game/spec.h"

namespace cocg::core {

struct OfflineConfig {
  int profiling_runs = 16;  ///< lab runs used for clustering + segmentation
  int corpus_runs = 96;     ///< additional runs for predictor training
  int players = 12;         ///< simulated player pool
  ProfilerConfig profiler;
  /// The paper picks each game's K by reading the Fig. 14 inflection point
  /// (§V-D1); with operator_k the pipeline does the same, using the game's
  /// designed cluster count. Set false to rely on the automatic elbow.
  bool operator_k = true;
  ml::ModelKind model = ml::ModelKind::kDtc;
  EncoderConfig encoder;
  double train_fraction = 0.75;
  std::uint64_t seed = 1;
};

struct TrainedGame {
  const game::GameSpec* spec = nullptr;
  /// Heap-held so the predictor's back-pointer survives moves.
  std::shared_ptr<GameProfile> profile;
  std::unique_ptr<StagePredictor> predictor;
  std::vector<double> sse_by_k;  ///< Fig. 14 curve from profiling
  int chosen_k = 0;
  DurationMs mean_run_duration_ms = 0;  ///< over profiling runs
};

/// Run the full offline pipeline for one game.
TrainedGame train_game(const game::GameSpec& spec, const OfflineConfig& cfg);

/// Train every game in a suite; keyed by game name. `spec` pointers refer
/// into `suite`, which must outlive the result.
std::map<std::string, TrainedGame> train_suite(
    const std::vector<game::GameSpec>& suite, const OfflineConfig& cfg);

}  // namespace cocg::core
