// Capacity planning on top of CoCG's profiles.
//
// An operator question the paper's model answers directly: given the
// profiled games and a server SKU, which mixes can one GPU view host under
// the distributor's expected-demand rule, and how many concurrent sessions
// of a mix fit? The planner enumerates admissible multisets of titles —
// the offline counterpart of Algorithm 1, useful for fleet sizing before
// any game is launched.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/game_profile.h"
#include "core/offline.h"
#include "hw/server.h"

namespace cocg::core {

struct PlannerConfig {
  double capacity_limit = 0.90;  ///< the distributor's admission headroom
  int max_sessions_per_view = 6; ///< enumeration bound
};

/// One admissible mix on a single GPU view.
struct MixPlan {
  std::vector<std::string> games;  ///< sorted title names (with repeats)
  ResourceVector expected_total;   ///< combined time-weighted demand
  double headroom = 0.0;           ///< min over dims of 1 − expected/cap
};

class CapacityPlanner {
 public:
  /// `models` must outlive the planner.
  CapacityPlanner(const std::map<std::string, TrainedGame>* models,
                  PlannerConfig cfg = {});

  /// Expected (time-weighted) demand of one title, per its profile:
  /// stage mean demands weighted by catalog mean durations.
  ResourceVector expected_demand(const std::string& game) const;

  /// Can this multiset of titles share one GPU view of `sku`?
  bool mix_fits(const std::vector<std::string>& games,
                const hw::ServerSpec& sku) const;

  /// Maximum count of one title per view.
  int max_concurrent(const std::string& game,
                     const hw::ServerSpec& sku) const;

  /// All maximal admissible mixes (no further title can be added) on one
  /// view, sorted by descending headroom. Exponential in principle;
  /// bounded by max_sessions_per_view and the suite size.
  std::vector<MixPlan> maximal_mixes(const hw::ServerSpec& sku) const;

 private:
  ResourceVector combined(const std::vector<std::string>& games) const;

  const std::map<std::string, TrainedGame>* models_;
  PlannerConfig cfg_;
};

}  // namespace cocg::core
