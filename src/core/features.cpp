#include "core/features.h"

#include "common/check.h"
#include "common/rng.h"

namespace cocg::core {

FeatureEncoder::FeatureEncoder(EncoderConfig cfg, int num_types)
    : cfg_(cfg), num_types_(num_types) {
  COCG_EXPECTS(cfg.history_len >= 1);
  COCG_EXPECTS(num_types >= 1);
}

void player_hash_floats(std::uint64_t player_id, double& h0, double& h1) {
  SplitMix64 sm(player_id ^ 0xc0c6'1234'5678ULL);
  h0 = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  h1 = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

std::vector<std::string> FeatureEncoder::feature_names() const {
  std::vector<std::string> names;
  for (int h = 0; h < cfg_.history_len; ++h) {
    names.push_back("hist_" + std::to_string(h));  // hist_0 = most recent
  }
  names.push_back("position");
  if (cfg_.mode_feature) names.push_back("mode");
  if (cfg_.player_features) {
    names.push_back("player_h0");
    names.push_back("player_h1");
  }
  return names;
}

ml::FeatureRow FeatureEncoder::encode(const std::vector<int>& exec_history,
                                      std::uint64_t player_id,
                                      std::size_t mode) const {
  ml::FeatureRow row;
  row.reserve(static_cast<std::size_t>(cfg_.history_len) + 3);
  // hist_0 is the most recent execution stage; pad with num_types_.
  for (int h = 0; h < cfg_.history_len; ++h) {
    const auto pos = static_cast<std::ptrdiff_t>(exec_history.size()) - 1 - h;
    row.push_back(pos >= 0
                      ? static_cast<double>(
                            exec_history[static_cast<std::size_t>(pos)])
                      : static_cast<double>(num_types_));
  }
  row.push_back(static_cast<double>(exec_history.size()));
  if (cfg_.mode_feature) row.push_back(static_cast<double>(mode));
  if (cfg_.player_features) {
    double h0 = 0.0, h1 = 0.0;
    player_hash_floats(player_id, h0, h1);
    row.push_back(h0);
    row.push_back(h1);
  }
  return row;
}

}  // namespace cocg::core
