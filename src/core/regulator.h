// Regulator — peak resolution by loading-time stealing (§IV-C2).
//
// When the sessions on one capacity view together want more than the limit,
// the regulator reduces supply to sessions currently in a loading stage
// (freezing their progress and throttling their draw) instead of cutting a
// game at its peak — "users are more tolerant of appropriately extending
// the loading time compared to dropping frames at peak times". Stealing is
// bounded per session; once the pressure passes, held sessions resume.
#pragma once

#include <vector>

#include "common/resources.h"
#include "common/types.h"

namespace cocg::core {

struct RegulatorConfig {
  double capacity_limit = 0.95;
  /// Fraction of the loading draw a held session still receives.
  double held_loading_frac = 0.25;
  /// Maximum loading time stolen from one session in one loading stage
  /// (the paper's Fig. 9 stretches a loading stage by ~15 s per staggered
  /// peak; a 30 s budget covers two).
  DurationMs max_steal_ms = 30000;
};

/// Pressure report for one session on the view.
struct SessionPressure {
  SessionId sid;
  bool in_loading = false;
  ResourceVector wanted;          ///< monitor-recommended allocation
  ResourceVector loading_demand;  ///< the loading stage's own draw
  DurationMs stolen_ms = 0;       ///< already stolen in this loading stage
};

/// The regulator's verdict for one session.
struct RegulatorAction {
  SessionId sid;
  bool hold = false;           ///< freeze loading progress
  ResourceVector allocation;   ///< cap to apply
};

class Regulator {
 public:
  explicit Regulator(RegulatorConfig cfg = {}) : cfg_(cfg) {}

  /// Resolve one capacity view. Deterministic: holds are applied to
  /// loading sessions in input order until the view fits; sessions whose
  /// steal budget is exhausted are exempt.
  std::vector<RegulatorAction> resolve(
      const ResourceVector& capacity,
      const std::vector<SessionPressure>& sessions) const;

  const RegulatorConfig& config() const { return cfg_; }

 private:
  RegulatorConfig cfg_;
};

}  // namespace cocg::core
