// The artifact of offline profiling: a game's cluster set + stage catalog.
//
// Built once per game from laboratory traces (§IV-A; "contention feature
// profiling and model training only need to be performed once"). The online
// system matches live 5-second frames against this profile.
#pragma once

#include <string>
#include <vector>

#include "common/resources.h"
#include "common/types.h"

namespace cocg::core {

/// One discovered frame cluster (centroid in resource space).
struct ClusterInfo {
  int id = -1;
  ResourceVector centroid;
  std::size_t frames = 0;  ///< frames assigned during profiling
  bool loading = false;    ///< carries the loading signature
};

/// One discovered stage type: a combination of clusters (§IV-A2).
struct StageTypeInfo {
  int id = -1;
  std::vector<int> clusters;  ///< sorted unique member cluster ids
  bool loading = false;
  ResourceVector peak_demand;  ///< max over member centroids
  ResourceVector mean_demand;
  DurationMs mean_duration_ms = 0;
  DurationMs max_duration_ms = 0;
  std::size_t occurrences = 0;
};

/// A profiled game.
struct GameProfile {
  std::string game_name;
  ResourceVector norm_scale;  ///< normalization used for all distances
  std::vector<ClusterInfo> clusters;
  std::vector<StageTypeInfo> stage_types;
  int loading_stage_type = -1;  ///< catalog id of the loading stage type
  ResourceVector peak_demand;   ///< max over execution stage peaks (M)

  const StageTypeInfo& stage_type(int id) const;
  const ClusterInfo& cluster(int id) const;
  int num_clusters() const { return static_cast<int>(clusters.size()); }
  int num_stage_types() const { return static_cast<int>(stage_types.size()); }

  /// Nearest cluster to a usage vector (normalized distance).
  int match_cluster(const ResourceVector& usage) const;

  /// Stage type whose signature equals the given sorted cluster set;
  /// -1 when unseen.
  int match_stage_signature(const std::vector<int>& sorted_clusters) const;

  /// Distance from `usage` to the nearest member-centroid of a stage type.
  double stage_distance(int stage_type_id, const ResourceVector& usage) const;

  /// Most specific execution stage type whose signature contains `cluster`
  /// (smallest signature wins); -1 when none does.
  int match_execution_stage_for_cluster(int cluster) const;
};

}  // namespace cocg::core
