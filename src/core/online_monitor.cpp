#include "core/online_monitor.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/check.h"

namespace cocg::core {

const char* monitor_event_name(MonitorEvent e) {
  switch (e) {
    case MonitorEvent::kSameStage: return "same-stage";
    case MonitorEvent::kEnteredLoading: return "entered-loading";
    case MonitorEvent::kEnteredExecution: return "entered-execution";
    case MonitorEvent::kStageRefined: return "stage-refined";
    case MonitorEvent::kPendingJump: return "pending-jump";
    case MonitorEvent::kRehearsalCallback: return "rehearsal-callback";
  }
  return "?";
}

OnlineMonitor::OnlineMonitor(const GameProfile* profile,
                             const StagePredictor* predictor,
                             std::uint64_t player_id, std::size_t mode,
                             MonitorConfig cfg)
    : profile_(profile),
      predictor_(predictor),
      player_id_(player_id),
      mode_(mode),
      cfg_(cfg) {
  COCG_EXPECTS(profile != nullptr);
  COCG_EXPECTS(predictor != nullptr);
  auto& reg = obs::metrics();
  obs_hits_ = reg.counter("predictor.hits." + profile->game_name);
  obs_misses_ = reg.counter("predictor.misses." + profile->game_name);
  obs_callbacks_ =
      reg.counter("monitor.rehearsal_callbacks." + profile->game_name);
}

bool OnlineMonitor::in_loading() const {
  return current_stage_ >= 0 &&
         profile_->stage_type(current_stage_).loading;
}

int OnlineMonitor::match_execution_stage(int cluster) const {
  return profile_->match_execution_stage_for_cluster(cluster);
}

void OnlineMonitor::enter_stage(int stage, TimeMs t) {
  current_stage_ = stage;
  stage_entered_ = t;
  pending_jump_stage_ = -1;
}

int OnlineMonitor::resolve_stage_from_window() const {
  if (window_clusters_.empty()) return -1;
  int total = 0, majority_cluster = -1, majority_count = -1;
  for (const auto& [c, n] : window_clusters_) {
    total += n;
    if (n > majority_count) {
      majority_count = n;
      majority_cluster = c;
    }
  }
  // Frequency-filtered signature (mirrors the profiler's hygiene): only
  // clusters covering a meaningful share of the stage count.
  std::set<int> sig;
  for (const auto& [c, n] : window_clusters_) {
    if (5 * n >= total) sig.insert(c);  // >= 20%
  }
  if (sig.empty()) sig.insert(majority_cluster);
  const std::vector<int> sorted(sig.begin(), sig.end());
  const int exact = profile_->match_stage_signature(sorted);
  if (exact >= 0 && !profile_->stage_type(exact).loading) return exact;
  return match_execution_stage(majority_cluster);
}

void OnlineMonitor::finalize_execution_stage(TimeMs t) {
  const int resolved = resolve_stage_from_window();
  if (resolved >= 0) {
    if (!exec_history_.empty()) exec_history_.back() = resolved;
    previous_stage_ = resolved;
  }
  if (pending_prediction_ >= 0 && resolved >= 0) {
    const bool hit = resolved == pending_prediction_;
    if (hit) {
      ++hits_;
      consecutive_errors_ = 0;
      obs_hits_.add();
    } else {
      ++misses_;
      ++consecutive_errors_;
      obs_misses_.add();
    }
    obs::events().record(
        t, obs::PredictionOutcome{
               session_id_, profile_->game_name, pending_prediction_,
               resolved, hit,
               ml::model_kind_name(predictor_->model_kind()),
               predictor_->redundancy().gpu()});
  }
  pending_prediction_ = -1;
}

MonitorEvent OnlineMonitor::observe(TimeMs t, const ResourceVector& usage,
                                    bool view_saturated) {
  const MonitorEvent ev = observe_impl(t, usage, view_saturated);
  if (ev == MonitorEvent::kRehearsalCallback) obs_callbacks_.add();
  // Judgement changes are logged; steady-state kSameStage is not (it is
  // the overwhelmingly common observation and carries no decision).
  if (ev != MonitorEvent::kSameStage) {
    obs::events().record(
        t, obs::MonitorRecord{session_id_, profile_->game_name,
                              monitor_event_name(ev), current_stage_});
  }
  return ev;
}

MonitorEvent OnlineMonitor::observe_impl(TimeMs t, const ResourceVector& usage,
                                         bool view_saturated) {
  const int cluster = profile_->match_cluster(usage);
  const bool obs_loading =
      profile_->cluster(cluster).loading &&
      profile_->loading_stage_type >= 0;

  // First observation: initialize the judged stage directly.
  if (current_stage_ < 0) {
    if (obs_loading) {
      enter_stage(profile_->loading_stage_type, t);
      loading_entered_ = t;
      first_loading_detection_ = true;
      predicted_next_ =
          predictor_->trained()
              ? predictor_->predict_next(exec_history_, player_id_, mode_)
              : -1;
      return MonitorEvent::kEnteredLoading;
    }
    const int st = match_execution_stage(cluster);
    enter_stage(st >= 0 ? st : 0, t);
    exec_history_.push_back(current_stage_);
    window_clusters_.clear();
    window_clusters_[cluster] = 1;
    pending_prediction_ = -1;  // nothing was predicted for this stage
    return MonitorEvent::kEnteredExecution;
  }

  const bool cur_loading = in_loading();

  if (cur_loading) {
    if (obs_loading) {
      if (first_loading_detection_) {
        // Second consecutive loading detection: the previous execution
        // stage has truly ended — resolve and score it, then refresh the
        // next-stage prediction from the finalized history.
        finalize_execution_stage(t);
        window_clusters_.clear();
        predicted_next_ =
            predictor_->trained()
                ? predictor_->predict_next(exec_history_, player_id_, mode_)
                : -1;
        first_loading_detection_ = false;
      }
      return MonitorEvent::kSameStage;
    }
    // Loading ended (or never truly began).
    const int matched = match_execution_stage(cluster);

    // §IV-B2 callback case 2: the "loading" judgement was a transient dip —
    // only one detection old and the game is back in the stage it was in
    // (any cluster of the previous stage's signature counts: a multi-
    // cluster stage resumes on whichever of its clusters shows first).
    // The interrupted stage resumes: its window and pending prediction are
    // still intact.
    const bool resumes_previous = [&] {
      if (previous_stage_ < 0) return false;
      const auto& sig = profile_->stage_type(previous_stage_).clusters;
      return std::find(sig.begin(), sig.end(), cluster) != sig.end();
    }();
    if (cfg_.guard_loading_misjudge && first_loading_detection_ &&
        resumes_previous && !window_clusters_.empty()) {
      ++callbacks_;
      ++consecutive_errors_;
      enter_stage(previous_stage_, t);
      window_clusters_[cluster] += 1;
      return MonitorEvent::kRehearsalCallback;
    }

    // Genuine transition into a new execution stage. If the loading was a
    // single detection, the previous stage was never finalized: do it now.
    if (first_loading_detection_) {
      finalize_execution_stage(t);
      predicted_next_ =
          predictor_->trained()
              ? predictor_->predict_next(exec_history_, player_id_, mode_)
              : -1;
    }
    int next = matched;
    if (next < 0) next = predicted_next_ >= 0 ? predicted_next_ : 0;
    exec_history_.push_back(next);
    enter_stage(next, t);
    window_clusters_.clear();
    window_clusters_[cluster] = 1;
    pending_prediction_ = predicted_next_;
    predicted_next_ = -1;
    return MonitorEvent::kEnteredExecution;
  }

  // Currently in an execution stage.
  const auto& st = profile_->stage_type(current_stage_);

  if (obs_loading) {
    // Execution → loading transition (Observation 2). Scoring of the
    // ending stage is deferred until the loading judgement is confirmed
    // (a transient dip must be withdrawable, §IV-B2 case 2).
    previous_stage_ = current_stage_;
    enter_stage(profile_->loading_stage_type, t);
    loading_entered_ = t;
    first_loading_detection_ = true;
    predicted_next_ =
        predictor_->trained()
            ? predictor_->predict_next(exec_history_, player_id_, mode_)
            : -1;
    return MonitorEvent::kEnteredLoading;
  }

  window_clusters_[cluster] += 1;

  // Signature completion: the accumulated window may reveal that this
  // stage is a multi-cluster type (§IV-A's three-boss realm) — upgrade the
  // judgement without treating it as an error.
  const int resolved = resolve_stage_from_window();
  if (resolved >= 0 && resolved != current_stage_) {
    const auto& cur_sig = profile_->stage_type(current_stage_).clusters;
    const auto& new_sig = profile_->stage_type(resolved).clusters;
    const bool upgrade = std::includes(new_sig.begin(), new_sig.end(),
                                       cur_sig.begin(), cur_sig.end());
    if (upgrade) {
      enter_stage(resolved, t);
      if (!exec_history_.empty()) exec_history_.back() = resolved;
      return MonitorEvent::kStageRefined;
    }
  }

  const bool in_signature =
      std::find(st.clusters.begin(), st.clusters.end(), cluster) !=
      st.clusters.end();
  if (in_signature) {
    pending_jump_stage_ = -1;
    return MonitorEvent::kSameStage;
  }

  // §IV-B2 callback case 1: real-time data differs from the current stage
  // and is not loading. Re-match, but require two consecutive detections
  // before jumping — a single outlier is the Fig. 10 transient.
  const int matched = match_execution_stage(cluster);
  if (matched < 0) return MonitorEvent::kSameStage;  // unknown cluster mix
  if (view_saturated &&
      profile_->stage_type(matched).peak_demand.fits_within(
          st.peak_demand)) {
    // Under saturation a squeezed draw mimics a lower-demand stage; hold
    // the current judgement until the pressure clears.
    pending_jump_stage_ = -1;
    return MonitorEvent::kSameStage;
  }
  if (pending_jump_stage_ == matched) {
    ++callbacks_;
    ++consecutive_errors_;
    // The history's last entry was the mis-judged stage: fix it and let
    // the window restart from the jump target's evidence.
    if (!exec_history_.empty()) exec_history_.back() = matched;
    enter_stage(matched, t);
    window_clusters_.clear();
    window_clusters_[cluster] = 2;  // the two confirming detections
    return MonitorEvent::kRehearsalCallback;
  }
  pending_jump_stage_ = matched;
  return MonitorEvent::kPendingJump;
}

DurationMs OnlineMonitor::stage_elapsed_ms(TimeMs now) const {
  COCG_EXPECTS(current_stage_ >= 0);
  return now - stage_entered_;
}

DurationMs OnlineMonitor::expected_remaining_ms(TimeMs now) const {
  COCG_EXPECTS(current_stage_ >= 0);
  const auto& st = profile_->stage_type(current_stage_);
  return std::max<DurationMs>(0, st.mean_duration_ms -
                                     stage_elapsed_ms(now));
}

ResourceVector OnlineMonitor::recommended_allocation() const {
  if (current_stage_ < 0) {
    // Nothing judged yet: provision for the worst case.
    return profile_->peak_demand;
  }
  // Redundancy allocation (Eq. 1) applies to the *callback* path: after a
  // prediction error the allocation carries S = (1 − P) × M until the next
  // correct judgement. Allocations never exceed M itself — the peak covers
  // every stage by definition.
  const ResourceVector redundancy =
      consecutive_errors_ > 0
          ? predictor_->redundancy() * cfg_.redundancy_scale
          : ResourceVector{};
  const auto& st = profile_->stage_type(current_stage_);
  if (!st.loading) {
    return ResourceVector::min(st.peak_demand + redundancy,
                               profile_->peak_demand);
  }
  // Loading: cover the loading draw and pre-provision the predicted next
  // stage so it starts unconstrained.
  ResourceVector rec = st.peak_demand * cfg_.loading_margin;
  if (predicted_next_ >= 0 &&
      predicted_next_ < profile_->num_stage_types()) {
    rec = ResourceVector::max(
        rec, ResourceVector::min(
                 profile_->stage_type(predicted_next_).peak_demand +
                     redundancy,
                 ResourceVector::max(profile_->peak_demand,
                                     st.peak_demand * cfg_.loading_margin)));
  }
  return rec;
}

std::vector<ResourceVector> OnlineMonitor::predicted_peaks(int n) const {
  std::vector<ResourceVector> out;
  if (current_stage_ >= 0) {
    out.push_back(profile_->stage_type(current_stage_).peak_demand);
  }
  if (!predictor_->trained()) return out;
  const auto seq =
      predictor_->predict_sequence(exec_history_, player_id_, mode_, n);
  for (int st : seq) {
    if (st >= 0 && st < profile_->num_stage_types()) {
      out.push_back(profile_->stage_type(st).peak_demand);
    }
  }
  return out;
}

}  // namespace cocg::core
