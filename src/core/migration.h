// Profile migration across heterogeneous platforms (§IV-D).
//
// "No matter what platform the game is migrated to, the number of stages
// and the logical relationship between the stages will not change...
// The only thing that will change is the amount of resources consumed,
// which can be obtained in a single experiment."
//
// migrate_profile() transforms a GameProfile measured on one SKU into the
// profile expected on another by rescaling the compute dimensions — the
// stage catalog (ids, signatures, durations) is preserved, so the trained
// stage predictor carries over unchanged.
#pragma once

#include "core/game_profile.h"
#include "core/offline.h"
#include "hw/server.h"

namespace cocg::core {

/// Rescale a profile measured on `from` for deployment on `to`.
GameProfile migrate_profile(const GameProfile& profile,
                            const hw::ServerSpec& from,
                            const hw::ServerSpec& to);

/// Migrate a whole trained bundle to another SKU: the profile's demands
/// are rescaled and the (unchanged) predictor is rebound to it. `scaled`
/// must be the GameSpec describing the title on the target platform and
/// must outlive the result. The paper's point: no retraining is needed.
TrainedGame migrate_trained_game(TrainedGame&& tg,
                                 const hw::ServerSpec& from,
                                 const hw::ServerSpec& to,
                                 const game::GameSpec* scaled);

/// Migration fidelity: mean normalized distance between the centroids of
/// two profiles with identical catalogs (used to validate a migrated
/// profile against one freshly measured on the target SKU). Requires the
/// same cluster count.
double profile_centroid_error(const GameProfile& a, const GameProfile& b);

}  // namespace cocg::core
