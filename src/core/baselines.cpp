#include "core/baselines.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::core {

namespace {

const TrainedGame* find_model(
    const std::map<std::string, TrainedGame>& models,
    const std::string& game) {
  auto it = models.find(game);
  return it == models.end() ? nullptr : &it->second;
}

/// First GPU view on which `alloc` fits outright; nullopt when none does.
std::optional<platform::Placement> place_fixed(
    platform::PlatformView& view, const ResourceVector& alloc) {
  for (ServerId server : view.server_ids()) {
    const auto& srv = view.server(server);
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      if (alloc.fits_within(srv.free_on_gpu(g))) {
        platform::Placement p;
        p.server = server;
        p.gpu_index = g;
        p.allocation = alloc;
        return p;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

// ---------------------------------------------------------------------------
// VBP
// ---------------------------------------------------------------------------

VbpScheduler::VbpScheduler(std::map<std::string, TrainedGame> models,
                           VbpConfig cfg)
    : models_(std::move(models)), cfg_(cfg) {
  COCG_EXPECTS(cfg_.reserve_fraction > 0.0 && cfg_.reserve_fraction <= 1.0);
}

std::optional<platform::Placement> VbpScheduler::admit(
    platform::PlatformView& view, const platform::GameRequest& req) {
  const TrainedGame* tg = find_model(models_, req.spec->name);
  if (tg == nullptr) return std::nullopt;
  const ResourceVector reservation =
      tg->profile->peak_demand * cfg_.reserve_fraction;
  return place_fixed(view, reservation);
}

// ---------------------------------------------------------------------------
// GAugur
// ---------------------------------------------------------------------------

GaugurScheduler::GaugurScheduler(std::map<std::string, TrainedGame> models,
                                 GaugurConfig cfg)
    : models_(std::move(models)), cfg_(cfg) {
  COCG_EXPECTS(cfg_.gap_share >= 0.0 && cfg_.gap_share <= 1.0);
}

ResourceVector GaugurScheduler::fixed_limit(const std::string& game) const {
  const TrainedGame* tg = find_model(models_, game);
  COCG_EXPECTS_MSG(tg != nullptr, "no profile for " + game);
  ResourceVector mean, peak = tg->profile->peak_demand;
  int n = 0;
  for (const auto& st : tg->profile->stage_types) {
    if (st.loading) continue;
    mean += st.mean_demand;
    ++n;
  }
  if (n > 0) mean *= 1.0 / n;
  return mean + cfg_.gap_share * (peak - mean);
}

std::optional<platform::Placement> GaugurScheduler::admit(
    platform::PlatformView& view, const platform::GameRequest& req) {
  const TrainedGame* tg = find_model(models_, req.spec->name);
  if (tg == nullptr) return std::nullopt;
  const ResourceVector limit = fixed_limit(req.spec->name);
  // Pairwise co-location feasibility: the candidate's fixed limit plus the
  // hosted games' fixed limits must fit the view (GAugur's profiled
  // interference prediction, reduced to its capacity form).
  for (ServerId server : view.server_ids()) {
    const auto& srv = view.server(server);
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      ResourceVector total = limit;
      bool known = true;
      for (SessionId sid : srv.sessions_on_gpu(g)) {
        const auto info = view.session_info(sid);
        const TrainedGame* htg = find_model(models_, info.spec->name);
        if (htg == nullptr) {
          known = false;
          break;
        }
        total += fixed_limit(info.spec->name);
      }
      if (!known) continue;
      // CPU/RAM drained by other GPUs' sessions.
      ResourceVector cap = srv.spec().per_gpu_capacity();
      for (int og = 0; og < srv.spec().num_gpus; ++og) {
        if (og == g) continue;
        for (SessionId sid : srv.sessions_on_gpu(og)) {
          cap[Dim::kCpuPct] -=
              srv.placement(sid).allocation[Dim::kCpuPct];
          cap[Dim::kRamMb] -= srv.placement(sid).allocation[Dim::kRamMb];
        }
      }
      if (total.fits_within(cap * cfg_.capacity_limit)) {
        platform::Placement p;
        p.server = server;
        p.gpu_index = g;
        p.allocation = limit;
        return p;
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Improved (stage-aware reactive)
// ---------------------------------------------------------------------------

ImprovedScheduler::ImprovedScheduler(std::map<std::string, TrainedGame> models,
                                     ImprovedConfig cfg)
    : models_(std::move(models)), cfg_(cfg) {
  COCG_EXPECTS(cfg_.headroom >= 1.0);
  COCG_EXPECTS(cfg_.window >= 1);
}

std::optional<platform::Placement> ImprovedScheduler::admit(
    platform::PlatformView& view, const platform::GameRequest& req) {
  const TrainedGame* tg = find_model(models_, req.spec->name);
  if (tg == nullptr) return std::nullopt;
  // Admits on *current observed* usage plus the candidate's typical draw —
  // no forward prediction.
  ResourceVector typical;
  int n = 0;
  for (const auto& st : tg->profile->stage_types) {
    if (st.loading) continue;
    typical += st.mean_demand;
    ++n;
  }
  if (n > 0) typical *= 1.0 / n;
  typical *= cfg_.headroom;

  for (ServerId server : view.server_ids()) {
    const auto& srv = view.server(server);
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      ResourceVector observed;
      for (SessionId sid : srv.sessions_on_gpu(g)) {
        const auto& samples = view.session_trace(sid).samples();
        if (samples.empty()) continue;
        ResourceVector mean;
        const std::size_t first =
            samples.size() > cfg_.window ? samples.size() - cfg_.window : 0;
        for (std::size_t i = first; i < samples.size(); ++i) {
          mean += samples[i].usage;
        }
        mean *= 1.0 / static_cast<double>(samples.size() - first);
        observed += mean;
      }
      const ResourceVector cap = srv.spec().per_gpu_capacity();
      if ((observed + typical).fits_within(cap * cfg_.capacity_limit)) {
        platform::Placement p;
        p.server = server;
        p.gpu_index = g;
        p.allocation = ResourceVector::min(typical, srv.free_on_gpu(g));
        return p;
      }
    }
  }
  return std::nullopt;
}

void ImprovedScheduler::control(platform::PlatformView& view) {
  // Reactive reallocation: follow the recent observation with headroom.
  for (SessionId sid : view.session_ids()) {
    const auto& samples = view.session_trace(sid).samples();
    if (samples.empty()) continue;
    ResourceVector mean;
    const std::size_t first =
        samples.size() > cfg_.window ? samples.size() - cfg_.window : 0;
    for (std::size_t i = first; i < samples.size(); ++i) {
      mean += samples[i].usage;
    }
    mean *= 1.0 / static_cast<double>(samples.size() - first);
    view.reallocate(sid, mean * cfg_.headroom, /*allow_oversubscribe=*/true);
  }
}

}  // namespace cocg::core
