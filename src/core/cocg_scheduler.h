// CocgScheduler — the paper's complete system (Fig. 3) as a pluggable
// platform::Scheduler.
//
//  * admission — Distributor (Algorithm 1) over per-GPU capacity views,
//    fed by the hosted sessions' monitors and the candidate's predictor;
//  * 5-second control loop — per-session OnlineMonitor updates (Fig. 8),
//    allocation = stage peak + redundancy (Eq. 1), Regulator stealing
//    loading time when a view is over the limit;
//  * replacing-model fallback — persistent prediction errors rotate the
//    game's model DTC → RF → GBDT (§IV-B2).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/distributor.h"
#include "core/offline.h"
#include "core/online_monitor.h"
#include "core/regulator.h"
#include "obs/obs.h"
#include "platform/scheduler.h"

namespace cocg::core {

struct CocgConfig {
  DistributorConfig distributor;
  RegulatorConfig regulator;
  MonitorConfig monitor;
  /// Consecutive prediction errors before the game's model is replaced.
  int replace_model_after = 5;
  /// Telemetry samples aggregated per detection (the paper's 5 s at 1 Hz).
  std::size_t detection_window = 5;
  std::uint64_t seed = 7;
};

class CocgScheduler final : public platform::Scheduler {
 public:
  /// `models`: one TrainedGame per game name (train_suite output).
  CocgScheduler(std::map<std::string, TrainedGame> models,
                CocgConfig cfg = {});

  std::string name() const override { return "CoCG"; }

  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override;

  void control(platform::PlatformView& view) override;

  void on_session_start(platform::PlatformView& view, SessionId sid) override;
  void on_session_end(platform::PlatformView& view, SessionId sid) override;

  /// Introspection for tests/benches.
  const TrainedGame& model(const std::string& game) const;
  int model_replacements() const { return model_replacements_; }
  int total_callbacks() const;

 private:
  struct SessionState {
    std::unique_ptr<OnlineMonitor> monitor;
    std::string game;
    std::uint64_t player_id = 0;
    std::size_t script_idx = 0;
    std::size_t samples_consumed = 0;
    DurationMs stolen_ms = 0;
    bool held = false;
    int outcomes_reported = 0;  ///< hits+misses already fed to the predictor
  };

  /// Capacity of one GPU view with the CPU/RAM pools reduced by sessions
  /// pinned to the server's other GPUs.
  ResourceVector view_capacity(const platform::PlatformView& view,
                               ServerId server, int gpu) const;
  SessionOutlook outlook_for(const SessionState& st, TimeMs now) const;
  CandidateOutlook candidate_outlook(const TrainedGame& tg,
                                     std::uint64_t player_id,
                                     std::size_t script_idx) const;
  void update_monitor(platform::PlatformView& view, SessionId sid,
                      SessionState& st, bool view_saturated);

  std::map<std::string, TrainedGame> models_;
  CocgConfig cfg_;
  Distributor distributor_;
  Regulator regulator_;
  std::map<SessionId, SessionState> state_;
  Rng rng_;
  int model_replacements_ = 0;

  // Decision-level observability (the per-view verdicts live in the
  // Distributor; these count whole admit() calls).
  obs::Counter obs_accepted_;
  obs::Counter obs_rejected_;
  obs::Counter obs_holds_;
  obs::Counter obs_replacements_;
  // Stage-profiler scopes for the three decision stages of the pipeline:
  // predictor (candidate outlook + monitor collect/judge/predict),
  // distributor (Algorithm 1 view scan), regulator (loading-steal pass).
  obs::StageTimer prof_predictor_;
  obs::StageTimer prof_distributor_;
  obs::StageTimer prof_regulator_;
};

}  // namespace cocg::core
