// Per-session online monitor: the 4-step 5-second loop of Fig. 8
// (collect → judge stage → predict next stage → adjust resources), plus the
// §IV-B2 dynamic-adjustment safeguards:
//  * rehearsal callback — on a mismatch, either re-match to the correct
//    stage (confirmed on the next detection) or, when a loading judgement
//    was a transient dip, jump back to the previous execution stage;
//  * redundancy allocation — recommendations carry S = (1 − P) × M.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/resources.h"
#include "common/types.h"
#include "core/game_profile.h"
#include "core/stage_predictor.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace cocg::core {

enum class MonitorEvent {
  kSameStage,          ///< observation matches the judged stage
  kEnteredLoading,     ///< execution → loading transition detected
  kEnteredExecution,   ///< loading → execution transition detected
  kStageRefined,       ///< window evidence upgraded to a multi-cluster type
  kPendingJump,        ///< mismatch observed; awaiting confirmation
  kRehearsalCallback,  ///< mis-judgement corrected (stage jump or jump-back)
};

const char* monitor_event_name(MonitorEvent e);

struct MonitorConfig {
  /// Loading-stage exit misjudgement guard: a loading judgement reverts if
  /// the very next detection matches the previous execution stage.
  bool guard_loading_misjudge = true;
  /// Margin applied to loading-stage demand recommendations.
  double loading_margin = 1.10;
  /// Scale on Eq. 1's redundancy S (ablation knob; 1.0 = the paper).
  double redundancy_scale = 1.0;
};

class OnlineMonitor {
 public:
  /// `profile` and `predictor` must outlive the monitor.
  OnlineMonitor(const GameProfile* profile, const StagePredictor* predictor,
                std::uint64_t player_id, std::size_t mode,
                MonitorConfig cfg = {});

  /// Feed one 5-second observation (mean usage over the detection window).
  /// When `view_saturated`, observations are supply-squeezed, so jumps to
  /// lower-demand execution stages are suppressed — a starved game looks
  /// exactly like a calmer one (§IV-B2's misjudgement risk).
  MonitorEvent observe(TimeMs t, const ResourceVector& usage,
                       bool view_saturated = false);

  /// Tag obs records with the platform session id (0 when standalone).
  void set_session_id(std::uint64_t sid) { session_id_ = sid; }

  // --- judged state ---
  bool in_loading() const;
  int current_stage() const { return current_stage_; }  ///< -1 before first obs
  const std::vector<int>& exec_history() const { return exec_history_; }
  /// Valid while in loading: the predicted next execution stage.
  int predicted_next() const { return predicted_next_; }
  /// Time spent in the currently judged stage.
  DurationMs stage_elapsed_ms(TimeMs now) const;
  /// Expected remaining time in the current stage from catalog statistics
  /// (>= 0; 0 when already past the mean duration).
  DurationMs expected_remaining_ms(TimeMs now) const;

  // --- resource recommendation (Fig. 8 step 4) ---
  /// Allocation for right now: execution → stage peak + S; loading →
  /// max(loading demand × margin, predicted-next peak + S) so the next
  /// stage is provisioned before it begins (§IV-B).
  ResourceVector recommended_allocation() const;

  /// Forward-looking per-stage peak demands: current stage then the
  /// predicted next `n` execution stages (Algorithm 1's scan).
  std::vector<ResourceVector> predicted_peaks(int n) const;

  // --- error accounting (replacing-model trigger) ---
  int prediction_hits() const { return hits_; }
  int prediction_misses() const { return misses_; }
  int callbacks() const { return callbacks_; }
  int consecutive_errors() const { return consecutive_errors_; }
  void reset_error_streak() { consecutive_errors_ = 0; }

 private:
  MonitorEvent observe_impl(TimeMs t, const ResourceVector& usage,
                            bool view_saturated);
  int match_execution_stage(int cluster) const;
  void enter_stage(int stage, TimeMs t);
  /// Best stage type for the clusters observed during the current
  /// execution stage (frequency-filtered signature match; falls back to
  /// the most specific type containing the majority cluster).
  int resolve_stage_from_window() const;
  /// Finish the current execution stage: upgrade the history entry to the
  /// window-resolved type and score the pending prediction.
  void finalize_execution_stage(TimeMs t);

  const GameProfile* profile_;
  const StagePredictor* predictor_;
  std::uint64_t player_id_;
  std::size_t mode_;
  MonitorConfig cfg_;

  int current_stage_ = -1;
  int previous_stage_ = -1;      ///< execution stage before current loading
  TimeMs stage_entered_ = 0;
  TimeMs loading_entered_ = 0;
  bool first_loading_detection_ = false;  ///< just one loading observation?
  std::vector<int> exec_history_;
  int predicted_next_ = -1;
  /// Prediction awaiting scoring: set when an execution stage begins,
  /// resolved against the window-judged stage when it ends (§IV-A's
  /// multi-cluster stages only reveal their full signature over time).
  int pending_prediction_ = -1;
  /// Observation counts per cluster within the current execution stage.
  std::map<int, int> window_clusters_;

  int pending_jump_stage_ = -1;

  int hits_ = 0;
  int misses_ = 0;
  int callbacks_ = 0;
  int consecutive_errors_ = 0;

  std::uint64_t session_id_ = 0;
  // Per-game counters (handle reuse: every monitor of one game shares the
  // same cells, so the registry aggregates across sessions).
  obs::Counter obs_hits_;
  obs::Counter obs_misses_;
  obs::Counter obs_callbacks_;
};

}  // namespace cocg::core
