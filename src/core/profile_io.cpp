#include "core/profile_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/textio.h"

namespace cocg::core {

namespace {

constexpr const char* kMagic = "cocg-profile-v1";
constexpr const char* kVersionPrefix = "cocg-profile-";

void write_vector(std::ostream& os, const ResourceVector& v) {
  for (std::size_t i = 0; i < kNumDims; ++i) {
    os << (i ? " " : "") << v.at(i);
  }
}

ResourceVector read_vector(LineReader& r, std::istringstream& is,
                           const std::string& ctx) {
  ResourceVector v;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    v.at(i) = r.field<double>(is, ctx);
  }
  return v;
}

}  // namespace

void write_profile(const GameProfile& profile, std::ostream& os) {
  // max_digits10 so the resource vectors round-trip to the exact bits —
  // bundles depend on a reloaded profile being indistinguishable from the
  // freshly profiled one.
  FullPrecision precision(os);
  os << kMagic << '\n';
  os << "game " << profile.game_name << '\n';
  os << "norm_scale ";
  write_vector(os, profile.norm_scale);
  os << '\n';
  os << "peak_demand ";
  write_vector(os, profile.peak_demand);
  os << '\n';
  os << "loading_stage_type " << profile.loading_stage_type << '\n';
  os << "clusters " << profile.clusters.size() << '\n';
  for (const auto& c : profile.clusters) {
    os << "cluster " << c.id << ' ' << c.frames << ' ' << (c.loading ? 1 : 0)
       << ' ';
    write_vector(os, c.centroid);
    os << '\n';
  }
  os << "stage_types " << profile.stage_types.size() << '\n';
  for (const auto& st : profile.stage_types) {
    os << "stage " << st.id << ' ' << (st.loading ? 1 : 0) << ' '
       << st.mean_duration_ms << ' ' << st.max_duration_ms << ' '
       << st.occurrences << ' ' << st.clusters.size();
    for (int c : st.clusters) os << ' ' << c;
    os << ' ';
    write_vector(os, st.peak_demand);
    os << ' ';
    write_vector(os, st.mean_demand);
    os << '\n';
  }
}

void save_profile(const GameProfile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_profile: cannot open " + path);
  write_profile(profile, out);
  if (!out) throw std::runtime_error("save_profile: write failed " + path);
}

GameProfile read_profile(LineReader& r) {
  const std::string magic = r.line(kMagic);
  if (magic != kMagic) {
    if (magic.rfind(kVersionPrefix, 0) == 0) {
      r.fail("unsupported profile format version '" + magic +
             "' (expected " + kMagic + ")");
    }
    r.fail("bad magic '" + magic + "' (expected " + std::string(kMagic) +
           ")");
  }
  GameProfile p;
  {
    auto ls = r.expect("game ");
    std::getline(ls, p.game_name);
  }
  {
    auto ls = r.expect("norm_scale ");
    p.norm_scale = read_vector(r, ls, "norm_scale");
  }
  {
    auto ls = r.expect("peak_demand ");
    p.peak_demand = read_vector(r, ls, "peak_demand");
  }
  {
    auto ls = r.expect("loading_stage_type ");
    p.loading_stage_type = r.field<int>(ls, "loading_stage_type");
  }
  std::size_t n_clusters = 0;
  {
    auto ls = r.expect("clusters ");
    n_clusters = r.field<std::size_t>(ls, "clusters");
  }
  for (std::size_t i = 0; i < n_clusters; ++i) {
    auto ls = r.expect("cluster ");
    ClusterInfo c;
    c.id = r.field<int>(ls, "cluster id");
    c.frames = r.field<std::size_t>(ls, "cluster frames");
    c.loading = r.field<int>(ls, "cluster loading") != 0;
    c.centroid = read_vector(r, ls, "cluster centroid");
    p.clusters.push_back(c);
  }
  std::size_t n_stages = 0;
  {
    auto ls = r.expect("stage_types ");
    n_stages = r.field<std::size_t>(ls, "stage_types");
  }
  for (std::size_t i = 0; i < n_stages; ++i) {
    auto ls = r.expect("stage ");
    StageTypeInfo st;
    st.id = r.field<int>(ls, "stage id");
    st.loading = r.field<int>(ls, "stage loading") != 0;
    st.mean_duration_ms = r.field<DurationMs>(ls, "stage mean duration");
    st.max_duration_ms = r.field<DurationMs>(ls, "stage max duration");
    st.occurrences = r.field<std::size_t>(ls, "stage occurrences");
    const auto n_members = r.field<std::size_t>(ls, "stage member count");
    for (std::size_t m = 0; m < n_members; ++m) {
      st.clusters.push_back(r.field<int>(ls, "stage member"));
    }
    st.peak_demand = read_vector(r, ls, "stage peak");
    st.mean_demand = read_vector(r, ls, "stage mean");
    p.stage_types.push_back(st);
  }
  return p;
}

GameProfile read_profile(std::istream& is) {
  LineReader r(is, "profile");
  return read_profile(r);
}

GameProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_profile: cannot open " + path);
  return read_profile(in);
}

}  // namespace cocg::core
