#include "core/profile_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cocg::core {

namespace {

constexpr const char* kMagic = "cocg-profile-v1";

void write_vector(std::ostream& os, const ResourceVector& v) {
  for (std::size_t i = 0; i < kNumDims; ++i) {
    os << (i ? " " : "") << v.at(i);
  }
}

ResourceVector read_vector(std::istringstream& is, const std::string& ctx) {
  ResourceVector v;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    if (!(is >> v.at(i))) {
      throw std::runtime_error("profile parse error in " + ctx);
    }
  }
  return v;
}

std::istringstream expect_line(std::istream& is, const std::string& key) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("profile truncated before '" + key + "'");
  }
  if (line.rfind(key, 0) != 0) {
    throw std::runtime_error("profile expected '" + key + "', got '" +
                             line + "'");
  }
  return std::istringstream(line.substr(key.size()));
}

}  // namespace

void write_profile(const GameProfile& profile, std::ostream& os) {
  os << kMagic << '\n';
  os << "game " << profile.game_name << '\n';
  os << "norm_scale ";
  write_vector(os, profile.norm_scale);
  os << '\n';
  os << "peak_demand ";
  write_vector(os, profile.peak_demand);
  os << '\n';
  os << "loading_stage_type " << profile.loading_stage_type << '\n';
  os << "clusters " << profile.clusters.size() << '\n';
  for (const auto& c : profile.clusters) {
    os << "cluster " << c.id << ' ' << c.frames << ' ' << (c.loading ? 1 : 0)
       << ' ';
    write_vector(os, c.centroid);
    os << '\n';
  }
  os << "stage_types " << profile.stage_types.size() << '\n';
  for (const auto& st : profile.stage_types) {
    os << "stage " << st.id << ' ' << (st.loading ? 1 : 0) << ' '
       << st.mean_duration_ms << ' ' << st.max_duration_ms << ' '
       << st.occurrences << ' ' << st.clusters.size();
    for (int c : st.clusters) os << ' ' << c;
    os << ' ';
    write_vector(os, st.peak_demand);
    os << ' ';
    write_vector(os, st.mean_demand);
    os << '\n';
  }
}

void save_profile(const GameProfile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_profile: cannot open " + path);
  write_profile(profile, out);
  if (!out) throw std::runtime_error("save_profile: write failed " + path);
}

GameProfile read_profile(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("profile: bad magic");
  }
  GameProfile p;
  {
    auto ls = expect_line(is, "game ");
    std::getline(ls, p.game_name);
  }
  {
    auto ls = expect_line(is, "norm_scale ");
    p.norm_scale = read_vector(ls, "norm_scale");
  }
  {
    auto ls = expect_line(is, "peak_demand ");
    p.peak_demand = read_vector(ls, "peak_demand");
  }
  {
    auto ls = expect_line(is, "loading_stage_type ");
    ls >> p.loading_stage_type;
  }
  std::size_t n_clusters = 0;
  {
    auto ls = expect_line(is, "clusters ");
    ls >> n_clusters;
  }
  for (std::size_t i = 0; i < n_clusters; ++i) {
    auto ls = expect_line(is, "cluster ");
    ClusterInfo c;
    int loading = 0;
    if (!(ls >> c.id >> c.frames >> loading)) {
      throw std::runtime_error("profile parse error in cluster");
    }
    c.loading = loading != 0;
    c.centroid = read_vector(ls, "cluster centroid");
    p.clusters.push_back(c);
  }
  std::size_t n_stages = 0;
  {
    auto ls = expect_line(is, "stage_types ");
    ls >> n_stages;
  }
  for (std::size_t i = 0; i < n_stages; ++i) {
    auto ls = expect_line(is, "stage ");
    StageTypeInfo st;
    int loading = 0;
    std::size_t n_members = 0;
    if (!(ls >> st.id >> loading >> st.mean_duration_ms >>
          st.max_duration_ms >> st.occurrences >> n_members)) {
      throw std::runtime_error("profile parse error in stage");
    }
    st.loading = loading != 0;
    for (std::size_t m = 0; m < n_members; ++m) {
      int c = 0;
      if (!(ls >> c)) {
        throw std::runtime_error("profile parse error in stage members");
      }
      st.clusters.push_back(c);
    }
    st.peak_demand = read_vector(ls, "stage peak");
    st.mean_demand = read_vector(ls, "stage mean");
    p.stage_types.push_back(st);
  }
  return p;
}

GameProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_profile: cannot open " + path);
  return read_profile(in);
}

}  // namespace cocg::core
