#include "core/offline.h"

#include "common/check.h"
#include "game/tracegen.h"

namespace cocg::core {

TrainedGame train_game(const game::GameSpec& spec, const OfflineConfig& cfg) {
  COCG_EXPECTS(cfg.profiling_runs >= 1);
  COCG_EXPECTS(cfg.corpus_runs >= 0);
  COCG_EXPECTS(cfg.players >= 1);
  Rng rng(cfg.seed ^ spec.id.value);

  TrainedGame out;
  out.spec = &spec;

  // 1. Laboratory profiling runs → traces.
  std::vector<telemetry::Trace> traces;
  std::vector<std::uint64_t> trace_players;
  std::vector<std::size_t> trace_scripts;
  traces.reserve(static_cast<std::size_t>(cfg.profiling_runs));
  for (int r = 0; r < cfg.profiling_runs; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    const auto player =
        static_cast<std::uint64_t>(rng.uniform_int(1, cfg.players));
    traces.push_back(
        game::profile_run(spec, script, player, rng.next_u64()));
    trace_players.push_back(player);
    trace_scripts.push_back(script);
  }
  DurationMs dur_sum = 0;
  for (const auto& t : traces) dur_sum += t.end_time() - t.start_time();
  out.mean_run_duration_ms = dur_sum / static_cast<DurationMs>(traces.size());

  // 2. Cluster + segment + catalog.
  ProfilerConfig prof_cfg = cfg.profiler;
  if (cfg.operator_k && prof_cfg.forced_k == 0) {
    prof_cfg.forced_k = spec.num_clusters();
  }
  FrameProfiler profiler(prof_cfg);
  auto prof_out = profiler.profile(spec.name, traces, rng);
  out.profile = std::make_shared<GameProfile>(std::move(prof_out.profile));
  out.sse_by_k = std::move(prof_out.sse_by_k);
  out.chosen_k = prof_out.chosen_k;

  // 3. Predictor corpus: the profiling runs' sequences plus bulk runs
  //    re-segmented against the fixed profile.
  std::vector<TrainingRun> corpus;
  for (std::size_t t = 0; t < prof_out.stage_sequences.size(); ++t) {
    corpus.push_back(TrainingRun{prof_out.stage_sequences[t],
                                 trace_players[t], trace_scripts[t]});
  }
  for (int r = 0; r < cfg.corpus_runs; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    const auto player =
        static_cast<std::uint64_t>(rng.uniform_int(1, cfg.players));
    const auto trace =
        game::profile_run(spec, script, player, rng.next_u64());
    corpus.push_back(TrainingRun{infer_stage_sequence(*out.profile, trace),
                                 player, script});
  }

  // 4. Train the stage predictor with category-aware sample selection.
  PredictorConfig pcfg;
  pcfg.model = cfg.model;
  pcfg.encoder = cfg.encoder;
  pcfg.train_fraction = cfg.train_fraction;
  pcfg.category = spec.category;
  out.predictor = std::make_unique<StagePredictor>(out.profile.get(), pcfg);
  out.predictor->train(corpus, rng);
  return out;
}

std::map<std::string, TrainedGame> train_suite(
    const std::vector<game::GameSpec>& suite, const OfflineConfig& cfg) {
  std::map<std::string, TrainedGame> out;
  for (const auto& spec : suite) {
    out.emplace(spec.name, train_game(spec, cfg));
  }
  return out;
}

}  // namespace cocg::core
