#include "core/model_bank.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/textio.h"
#include "core/profile_io.h"

namespace cocg::core {

namespace {

constexpr const char* kMagic = "cocg-bundle-v1";
constexpr const char* kVersionPrefix = "cocg-bundle-";
constexpr const char* kFileExt = ".cocgm";

/// Game names become file names: anything outside [A-Za-z0-9._-] → '_'.
std::string sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? std::string("game") : out;
}

}  // namespace

void write_bundle(const GameBundle& bundle, std::ostream& os,
                  bool include_corpus) {
  if (bundle.profile == nullptr) {
    throw std::runtime_error("write_bundle: bundle has no profile");
  }
  FullPrecision precision(os);
  os << kMagic << '\n';
  os << "chosen_k " << bundle.chosen_k << '\n';
  os << "mean_run_duration_ms " << bundle.mean_run_duration_ms << '\n';
  os << "sse_by_k " << bundle.sse_by_k.size();
  for (double v : bundle.sse_by_k) os << ' ' << v;
  os << '\n';
  write_profile(*bundle.profile, os);
  // Re-serialize the predictor artifact via a throwaway StagePredictor so
  // there is exactly one writer for the predictor block.
  StagePredictor::from_artifact(bundle.predictor, bundle.profile.get())
      ->save_bundle(os, include_corpus);
  os << "end-bundle\n";
}

void save_bundle_file(const GameBundle& bundle, const std::string& path,
                      bool include_corpus) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_bundle: cannot open " + path);
  write_bundle(bundle, out, include_corpus);
  if (!out) throw std::runtime_error("save_bundle: write failed " + path);
}

GameBundle read_bundle(std::istream& is) {
  LineReader r(is, "bundle");
  const std::string magic = r.line(kMagic);
  if (magic != kMagic) {
    if (magic.rfind(kVersionPrefix, 0) == 0) {
      r.fail("unsupported bundle format version '" + magic +
             "' (expected " + kMagic + ")");
    }
    r.fail("bad magic '" + magic + "' (expected " + std::string(kMagic) +
           ")");
  }
  GameBundle b;
  {
    auto ls = r.expect("chosen_k ");
    b.chosen_k = r.field<int>(ls, "chosen_k");
  }
  {
    auto ls = r.expect("mean_run_duration_ms ");
    b.mean_run_duration_ms = r.field<DurationMs>(ls, "mean_run_duration_ms");
  }
  {
    auto ls = r.expect("sse_by_k ");
    const auto n = r.field<std::size_t>(ls, "sse_by_k count");
    b.sse_by_k.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      b.sse_by_k.push_back(r.field<double>(ls, "sse_by_k value"));
    }
  }
  b.profile = std::make_shared<const GameProfile>(read_profile(r));
  b.predictor = StagePredictor::read_artifact(r);
  {
    const std::string end = r.line("end-bundle");
    if (end != "end-bundle") {
      r.fail("expected 'end-bundle', got '" + end + "'");
    }
  }
  return b;
}

GameBundle load_bundle_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_bundle: cannot open " + path);
  try {
    return read_bundle(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

GameBundle ModelBank::bundle_from(const TrainedGame& tg,
                                  bool include_corpus) {
  COCG_EXPECTS_MSG(tg.profile != nullptr && tg.predictor != nullptr &&
                       tg.predictor->trained(),
                   "bundle_from requires a fully trained game");
  GameBundle b;
  b.profile = std::make_shared<const GameProfile>(*tg.profile);
  b.predictor = tg.predictor->to_artifact(include_corpus);
  b.sse_by_k = tg.sse_by_k;
  b.chosen_k = tg.chosen_k;
  b.mean_run_duration_ms = tg.mean_run_duration_ms;
  return b;
}

void ModelBank::add(GameBundle bundle) {
  if (bundle.profile == nullptr) {
    throw std::runtime_error("ModelBank::add: bundle has no profile");
  }
  const std::string name = bundle.game_name();
  bundles_.insert_or_assign(name, std::move(bundle));
}

void ModelBank::add_trained(const TrainedGame& tg, bool include_corpus) {
  add(bundle_from(tg, include_corpus));
}

bool ModelBank::has(const std::string& game) const {
  return bundles_.count(game) != 0;
}

std::vector<std::string> ModelBank::games() const {
  std::vector<std::string> out;
  out.reserve(bundles_.size());
  for (const auto& [name, b] : bundles_) out.push_back(name);
  return out;
}

const GameBundle& ModelBank::bundle(const std::string& game) const {
  auto it = bundles_.find(game);
  if (it == bundles_.end()) {
    throw std::runtime_error("model bank has no bundle for game '" + game +
                             "'");
  }
  return it->second;
}

TrainedGame ModelBank::instantiate(const std::string& game,
                                   const game::GameSpec* spec) const {
  const GameBundle& b = bundle(game);
  TrainedGame tg;
  tg.spec = spec;
  tg.profile = std::make_shared<GameProfile>(*b.profile);
  tg.predictor = StagePredictor::from_artifact(b.predictor, tg.profile.get());
  tg.sse_by_k = b.sse_by_k;
  tg.chosen_k = b.chosen_k;
  tg.mean_run_duration_ms = b.mean_run_duration_ms;
  return tg;
}

std::map<std::string, TrainedGame> ModelBank::instantiate_suite(
    const std::vector<game::GameSpec>& suite) const {
  std::map<std::string, TrainedGame> out;
  for (const auto& spec : suite) {
    if (!has(spec.name)) {
      throw std::runtime_error("model bank has no bundle for game '" +
                               spec.name + "'");
    }
    out.emplace(spec.name, instantiate(spec.name, &spec));
  }
  return out;
}

std::vector<std::string> ModelBank::save_dir(const std::string& dir,
                                             bool include_corpus) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("save_dir: cannot create " + dir + ": " +
                             ec.message());
  }
  std::vector<std::string> paths;
  for (const auto& [name, b] : bundles_) {
    const auto path =
        (std::filesystem::path(dir) / (sanitize_name(name) + kFileExt))
            .string();
    save_bundle_file(b, path, include_corpus);
    paths.push_back(path);
  }
  return paths;
}

ModelBank ModelBank::load_dir(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("load_dir: not a directory: " + dir);
  }
  ModelBank bank;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != kFileExt) {
      continue;
    }
    bank.add(load_bundle_file(entry.path().string()));
  }
  return bank;
}

}  // namespace cocg::core
