#include "core/scheduler_factory.h"

#include <stdexcept>
#include <utility>

#include "core/baselines.h"
#include "core/cocg_scheduler.h"

namespace cocg::core {

std::unique_ptr<platform::Scheduler> make_named_scheduler(
    const std::string& name, std::map<std::string, TrainedGame> models) {
  if (name == "cocg") {
    return std::make_unique<CocgScheduler>(std::move(models));
  }
  if (name == "vbp") {
    return std::make_unique<VbpScheduler>(std::move(models));
  }
  if (name == "gaugur") {
    return std::make_unique<GaugurScheduler>(std::move(models));
  }
  if (name == "improved") {
    return std::make_unique<ImprovedScheduler>(std::move(models));
  }
  throw std::runtime_error("unknown scheduler: " + name);
}

std::unique_ptr<platform::Scheduler> make_named_scheduler(
    const std::string& name, const ModelBank& bank,
    const std::vector<game::GameSpec>& suite) {
  return make_named_scheduler(name, bank.instantiate_suite(suite));
}

}  // namespace cocg::core
