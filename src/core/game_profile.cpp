#include "core/game_profile.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace cocg::core {

const StageTypeInfo& GameProfile::stage_type(int id) const {
  COCG_EXPECTS(id >= 0 && id < num_stage_types());
  return stage_types[static_cast<std::size_t>(id)];
}

const ClusterInfo& GameProfile::cluster(int id) const {
  COCG_EXPECTS(id >= 0 && id < num_clusters());
  return clusters[static_cast<std::size_t>(id)];
}

int GameProfile::match_cluster(const ResourceVector& usage) const {
  COCG_EXPECTS(!clusters.empty());
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& c : clusters) {
    const double d = usage.distance_sq(c.centroid, norm_scale);
    if (d < best_d) {
      best_d = d;
      best = c.id;
    }
  }
  return best;
}

int GameProfile::match_stage_signature(
    const std::vector<int>& sorted_clusters) const {
  for (const auto& st : stage_types) {
    if (st.clusters == sorted_clusters) return st.id;
  }
  return -1;
}

double GameProfile::stage_distance(int stage_type_id,
                                   const ResourceVector& usage) const {
  const auto& st = stage_type(stage_type_id);
  double best = std::numeric_limits<double>::max();
  for (int c : st.clusters) {
    best = std::min(best, usage.distance(cluster(c).centroid, norm_scale));
  }
  return best;
}

int GameProfile::match_execution_stage_for_cluster(int cluster) const {
  int best = -1;
  std::size_t best_size = std::numeric_limits<std::size_t>::max();
  for (const auto& st : stage_types) {
    if (st.loading) continue;
    if (std::find(st.clusters.begin(), st.clusters.end(), cluster) ==
        st.clusters.end()) {
      continue;
    }
    if (st.clusters.size() < best_size) {
      best_size = st.clusters.size();
      best = st.id;
    }
  }
  return best;
}

}  // namespace cocg::core
