#include "core/distributor.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::core {

Distributor::Distributor(DistributorConfig cfg) : cfg_(cfg) {
  auto& reg = obs::metrics();
  obs_admit_empty_ = reg.counter("distributor.admit.empty_server");
  obs_admit_short_ = reg.counter("distributor.admit.short_game_gap");
  obs_admit_fit_ = reg.counter("distributor.admit.complementary_fit");
  obs_reject_alone_ =
      reg.counter("distributor.reject.candidate_exceeds_capacity");
  obs_reject_now_ =
      reg.counter("distributor.reject.current_exceeds_limit");
  obs_reject_expected_ =
      reg.counter("distributor.reject.expected_exceeds_limit");
}

AdmitDecision Distributor::decide(
    const ResourceVector& capacity, const std::vector<SessionOutlook>& hosted,
    const CandidateOutlook& candidate) const {
  COCG_EXPECTS(cfg_.horizon >= 1);
  const ResourceVector limit = capacity * cfg_.capacity_limit;

  // Empty server: admissible when the candidate alone fits outright.
  if (hosted.empty()) {
    if (candidate.peak.fits_within(capacity)) {
      obs_admit_empty_.add();
      return {true, "empty server"};
    }
    obs_reject_alone_.add();
    return {false, "candidate alone exceeds capacity"};
  }

  // Instantaneous feasibility at the moment of admission: hosted sessions
  // at their current-stage peaks plus the candidate's opening loading draw.
  // Loading CPU is elastic (it stretches), so it is discounted.
  // The hosted current-peak sum feeds both the instantaneous check and the
  // short-game fastpath; accumulate both totals in one pass so the
  // discounted peaks are computed once per hosted session.
  ResourceVector opening = candidate.opening;
  opening[Dim::kCpuPct] *= cfg_.loading_cpu_elasticity;
  ResourceVector now_total = opening;
  ResourceVector with_peak = candidate.peak;
  for (const auto& h : hosted) {
    ResourceVector cur = h.current_peak;
    if (h.in_loading) cur[Dim::kCpuPct] *= cfg_.loading_cpu_elasticity;
    now_total += cur;
    with_peak += cur;
  }
  const bool now_ok = now_total.fits_within(limit);

  // §IV-C2 "distinguish game length": a short game slots into the gap when
  // the hosted sessions' current stages leave instantaneous room for its
  // whole peak — by prediction, the next hosted peak is at least one stage
  // transition away.
  if (cfg_.short_game_fastpath && candidate.short_game &&
      with_peak.fits_within(limit)) {
    obs_admit_short_.add();
    return {true, "short-game gap insertion"};
  }

  if (!now_ok) {
    obs_reject_now_.add();
    return {false, "current combined consumption exceeds limit"};
  }

  // Algorithm 1's forward scan, reduced: combined time-weighted expected
  // demand over the prediction horizon must stay under the limit. Peaks
  // that interleave above it are the regulator's job; sustained expected
  // oversubscription is not admissible.
  ResourceVector expected_total = candidate.expected;
  for (const auto& h : hosted) expected_total += h.expected;
  if (!expected_total.fits_within(limit)) {
    obs_reject_expected_.add();
    return {false, "expected combined consumption exceeds limit"};
  }
  obs_admit_fit_.add();
  return {true, "complementary fit"};
}

}  // namespace cocg::core
