#include "core/distributor.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::core {

AdmitDecision Distributor::decide(
    const ResourceVector& capacity, const std::vector<SessionOutlook>& hosted,
    const CandidateOutlook& candidate) const {
  COCG_EXPECTS(cfg_.horizon >= 1);
  const ResourceVector limit = capacity * cfg_.capacity_limit;

  // Empty server: admissible when the candidate alone fits outright.
  if (hosted.empty()) {
    if (candidate.peak.fits_within(capacity)) return {true, "empty server"};
    return {false, "candidate alone exceeds capacity"};
  }

  // Instantaneous feasibility at the moment of admission: hosted sessions
  // at their current-stage peaks plus the candidate's opening loading draw.
  // Loading CPU is elastic (it stretches), so it is discounted.
  ResourceVector opening = candidate.opening;
  opening[Dim::kCpuPct] *= cfg_.loading_cpu_elasticity;
  ResourceVector now_total = opening;
  for (const auto& h : hosted) {
    ResourceVector cur = h.current_peak;
    if (h.in_loading) cur[Dim::kCpuPct] *= cfg_.loading_cpu_elasticity;
    now_total += cur;
  }
  const bool now_ok = now_total.fits_within(limit);

  // §IV-C2 "distinguish game length": a short game slots into the gap when
  // the hosted sessions' current stages leave instantaneous room for its
  // whole peak — by prediction, the next hosted peak is at least one stage
  // transition away.
  if (cfg_.short_game_fastpath && candidate.short_game) {
    ResourceVector with_peak = candidate.peak;
    for (const auto& h : hosted) {
      ResourceVector cur = h.current_peak;
      if (h.in_loading) cur[Dim::kCpuPct] *= cfg_.loading_cpu_elasticity;
      with_peak += cur;
    }
    if (with_peak.fits_within(limit)) {
      return {true, "short-game gap insertion"};
    }
  }

  if (!now_ok) {
    return {false, "current combined consumption exceeds limit"};
  }

  // Algorithm 1's forward scan, reduced: combined time-weighted expected
  // demand over the prediction horizon must stay under the limit. Peaks
  // that interleave above it are the regulator's job; sustained expected
  // oversubscription is not admissible.
  ResourceVector expected_total = candidate.expected;
  for (const auto& h : hosted) expected_total += h.expected;
  if (!expected_total.fits_within(limit)) {
    return {false, "expected combined consumption exceeds limit"};
  }
  return {true, "complementary fit"};
}

}  // namespace cocg::core
