// ModelBank: the train-once / share-everywhere registry (§IV-B1).
//
// A GameBundle is one game's complete offline output — profile, compiled
// predictor artifact, and the summary stats the schedulers read — in an
// immutable, serializable form. The ModelBank keys bundles by game name
// and materializes per-session TrainedGame instances from them:
//
//   * the compiled forests are SHARED (aliased shared_ptr, read-only), so
//     K fleet shards hold one copy of every model instead of K;
//   * the profile is DEEP-COPIED per instantiation (it is small, and the
//     per-shard copy keeps any future profile mutation from leaking
//     across shards);
//   * the training corpus rides along (unless saved without it), so a
//     restored predictor's replace_model retrains exactly like the
//     original's.
//
// Lifetime rules: a bundle handed out by the bank stays valid as long as
// any instantiated TrainedGame holds its forests — the shared_ptrs keep
// the arrays alive even if the bank itself is destroyed. The bank is
// immutable after loading; concurrent instantiate() calls from fleet
// shard threads are safe.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/offline.h"

namespace cocg::core {

/// One game's immutable trained artifacts.
struct GameBundle {
  std::shared_ptr<const GameProfile> profile;
  PredictorArtifact predictor;
  std::vector<double> sse_by_k;  ///< Fig. 14 curve from profiling
  int chosen_k = 0;
  DurationMs mean_run_duration_ms = 0;

  const std::string& game_name() const { return profile->game_name; }
};

/// Serialize one bundle (versioned, human-diffable; embeds the profile
/// and predictor blocks). Throws std::runtime_error on failure.
void write_bundle(const GameBundle& bundle, std::ostream& os,
                  bool include_corpus = true);
void save_bundle_file(const GameBundle& bundle, const std::string& path,
                      bool include_corpus = true);

/// Deserialize. Throws std::runtime_error with a line/field diagnostic on
/// truncated, corrupt, or version-skewed input.
GameBundle read_bundle(std::istream& is);
GameBundle load_bundle_file(const std::string& path);

class ModelBank {
 public:
  /// Snapshot a TrainedGame as an immutable bundle (models shared, not
  /// copied; profile copied).
  static GameBundle bundle_from(const TrainedGame& tg,
                                bool include_corpus = true);

  /// Register a bundle under its game name, replacing any previous one.
  void add(GameBundle bundle);
  void add_trained(const TrainedGame& tg, bool include_corpus = true);

  bool has(const std::string& game) const;
  std::size_t size() const { return bundles_.size(); }
  std::vector<std::string> games() const;
  /// Throws std::runtime_error when the game is unknown.
  const GameBundle& bundle(const std::string& game) const;

  /// Materialize a TrainedGame for one session/shard: profile deep-copied,
  /// predictor restored against that copy, forests shared with the bank.
  /// `spec` must outlive the result (it is stored by pointer, exactly as
  /// train_game does).
  TrainedGame instantiate(const std::string& game,
                          const game::GameSpec* spec) const;

  /// instantiate() for every suite entry; throws std::runtime_error
  /// naming the first game missing from the bank. `suite` must outlive
  /// the result.
  std::map<std::string, TrainedGame> instantiate_suite(
      const std::vector<game::GameSpec>& suite) const;

  /// Write one `<sanitized-game-name>.cocgm` file per bundle into `dir`
  /// (created if needed); returns the paths written.
  std::vector<std::string> save_dir(const std::string& dir,
                                    bool include_corpus = true) const;
  /// Load every *.cocgm file in `dir`. Throws std::runtime_error when the
  /// directory is missing or any bundle fails to parse.
  static ModelBank load_dir(const std::string& dir);

 private:
  std::map<std::string, GameBundle> bundles_;
};

}  // namespace cocg::core
