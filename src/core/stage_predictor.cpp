#include "core/stage_predictor.h"

#include <algorithm>

#include "common/check.h"
#include "ml/metrics.h"

namespace cocg::core {

StagePredictor::StagePredictor(const GameProfile* profile,
                               PredictorConfig cfg)
    : profile_(profile),
      cfg_(cfg),
      encoder_(cfg.encoder, profile ? profile->num_stage_types() : 1) {
  COCG_EXPECTS(profile != nullptr);
  COCG_EXPECTS(cfg.train_fraction > 0.0 && cfg.train_fraction < 1.0);
}

std::vector<int> StagePredictor::exec_only(const std::vector<int>& seq) const {
  std::vector<int> out;
  out.reserve(seq.size());
  for (int st : seq) {
    if (st >= 0 && st < profile_->num_stage_types() &&
        !profile_->stage_type(st).loading) {
      out.push_back(st);
    }
  }
  return out;
}

ml::Dataset StagePredictor::build_dataset(
    const std::vector<TrainingRun>& runs) const {
  ml::Dataset data(encoder_.feature_names());
  for (const auto& run : runs) {
    const auto exec = exec_only(run.stage_seq);
    // Pairs (history prefix → next stage); the empty-history pair teaches
    // the opening stage.
    for (std::size_t i = 0; i + 1 <= exec.size(); ++i) {
      std::vector<int> hist(exec.begin(),
                            exec.begin() + static_cast<std::ptrdiff_t>(i));
      data.add(encoder_.encode(hist, run.player_id, run.script_idx),
               exec[i]);
    }
  }
  return data;
}

void StagePredictor::train(const std::vector<TrainingRun>& runs, Rng& rng) {
  COCG_EXPECTS_MSG(!runs.empty(), "training needs at least one run");
  corpus_ = runs;
  fit_active(rng);
}

void StagePredictor::fit_active(Rng& rng) {
  const ml::Dataset all = build_dataset(corpus_);
  COCG_CHECK_MSG(!all.empty(), "corpus produced no training pairs");

  // Pooled model with held-out accuracy (the paper's 75/25 split).
  auto [train, test] = all.split(cfg_.train_fraction, rng);
  if (train.empty() || test.empty()) {
    train = all;
    test = all;
  }
  pooled_ = ml::make_classifier(cfg_.model);
  pooled_->fit(train, rng);
  std::vector<int> pred;
  pred.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(pooled_->predict(test.x(i)));
  }
  accuracy_ = ml::accuracy(test.labels(), pred);

  // Refit the pooled model on everything for online use.
  pooled_ = ml::make_classifier(cfg_.model);
  pooled_->fit(all, rng);

  // Mobile quadrant: personal models for players with enough history
  // (§IV-B1 "finely establish a training set for each individual player").
  per_player_.clear();
  if (cfg_.category == game::GameCategory::kMobile) {
    std::map<std::uint64_t, std::vector<TrainingRun>> by_player;
    for (const auto& run : corpus_) by_player[run.player_id].push_back(run);
    for (const auto& [pid, runs] : by_player) {
      if (runs.size() < cfg_.min_player_runs) continue;
      const ml::Dataset pd = build_dataset(runs);
      if (pd.empty()) continue;
      auto model = ml::make_classifier(cfg_.model);
      model->fit(pd, rng);
      per_player_[pid] = std::move(model);
    }
  }
}

int StagePredictor::predict_next(const std::vector<int>& exec_history,
                                 std::uint64_t player_id,
                                 std::size_t mode) const {
  COCG_EXPECTS_MSG(trained(), "predict before train");
  const auto row = encoder_.encode(exec_history, player_id, mode);
  auto it = per_player_.find(player_id);
  if (it != per_player_.end()) return it->second->predict(row);
  return pooled_->predict(row);
}

std::vector<int> StagePredictor::predict_sequence(
    const std::vector<int>& exec_history, std::uint64_t player_id,
    std::size_t mode, int n) const {
  COCG_EXPECTS(n >= 0);
  std::vector<int> hist = exec_history;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int next = predict_next(hist, player_id, mode);
    out.push_back(next);
    hist.push_back(next);
  }
  return out;
}

void StagePredictor::record_outcome(bool hit) {
  constexpr double kAlpha = 0.05;  // slow EMA: tens of outcomes to move P
  if (online_n_ == 0) online_acc_ = accuracy_;
  online_acc_ = kAlpha * (hit ? 1.0 : 0.0) + (1.0 - kAlpha) * online_acc_;
  ++online_n_;
}

double StagePredictor::online_accuracy() const {
  return online_n_ == 0 ? accuracy_ : online_acc_;
}

ResourceVector StagePredictor::redundancy() const {
  // S = (1 − P) × M — Eq. 1, with M the game's peak consumption. P is the
  // offline held-out accuracy refined by live outcomes once any exist.
  return (1.0 - online_accuracy()) * profile_->peak_demand;
}

void StagePredictor::replace_model(Rng& rng) {
  switch (cfg_.model) {
    case ml::ModelKind::kDtc: cfg_.model = ml::ModelKind::kRf; break;
    case ml::ModelKind::kRf: cfg_.model = ml::ModelKind::kGbdt; break;
    case ml::ModelKind::kGbdt: cfg_.model = ml::ModelKind::kDtc; break;
  }
  if (!corpus_.empty()) fit_active(rng);
}

void StagePredictor::rebind_profile(const GameProfile* profile) {
  COCG_EXPECTS(profile != nullptr);
  COCG_EXPECTS_MSG(
      profile->num_stage_types() == profile_->num_stage_types(),
      "rebind requires an identical stage-type catalog");
  profile_ = profile;
}

double StagePredictor::evaluate_model(ml::ModelKind kind, Rng& rng) const {
  COCG_EXPECTS(!corpus_.empty());
  const ml::Dataset all = build_dataset(corpus_);
  auto [train, test] = all.split(cfg_.train_fraction, rng);
  if (train.empty() || test.empty()) return 1.0;
  auto model = ml::make_classifier(kind);
  model->fit(train, rng);

  std::vector<int> pred;
  pred.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(model->predict(test.x(i)));
  }
  return ml::accuracy(test.labels(), pred);
}

}  // namespace cocg::core
