#include "core/stage_predictor.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "common/check.h"
#include "ml/metrics.h"
#include "ml/model_io.h"

namespace cocg::core {

StagePredictor::StagePredictor(const GameProfile* profile,
                               PredictorConfig cfg)
    : profile_(profile),
      cfg_(cfg),
      encoder_(cfg.encoder, profile ? profile->num_stage_types() : 1) {
  COCG_EXPECTS(profile != nullptr);
  COCG_EXPECTS(cfg.train_fraction > 0.0 && cfg.train_fraction < 1.0);
}

std::vector<int> StagePredictor::exec_only(const std::vector<int>& seq) const {
  std::vector<int> out;
  out.reserve(seq.size());
  for (int st : seq) {
    if (st >= 0 && st < profile_->num_stage_types() &&
        !profile_->stage_type(st).loading) {
      out.push_back(st);
    }
  }
  return out;
}

ml::Dataset StagePredictor::build_dataset(
    const std::vector<TrainingRun>& runs) const {
  ml::Dataset data(encoder_.feature_names());
  for (const auto& run : runs) {
    const auto exec = exec_only(run.stage_seq);
    // Pairs (history prefix → next stage); the empty-history pair teaches
    // the opening stage.
    for (std::size_t i = 0; i + 1 <= exec.size(); ++i) {
      std::vector<int> hist(exec.begin(),
                            exec.begin() + static_cast<std::ptrdiff_t>(i));
      data.add(encoder_.encode(hist, run.player_id, run.script_idx),
               exec[i]);
    }
  }
  return data;
}

void StagePredictor::train(const std::vector<TrainingRun>& runs, Rng& rng) {
  COCG_EXPECTS_MSG(!runs.empty(), "training needs at least one run");
  corpus_ = runs;
  fit_active(rng);
}

void StagePredictor::fit_active(Rng& rng) {
  const ml::Dataset all = build_dataset(corpus_);
  COCG_CHECK_MSG(!all.empty(), "corpus produced no training pairs");

  // Pooled model with held-out accuracy (the paper's 75/25 split).
  auto [train, test] = all.split(cfg_.train_fraction, rng);
  if (train.empty() || test.empty()) {
    train = all;
    test = all;
  }
  pooled_ = ml::make_classifier(cfg_.model);
  pooled_->fit(train, rng);
  std::vector<int> pred;
  pred.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(pooled_->predict(test.x(i)));
  }
  accuracy_ = ml::accuracy(test.labels(), pred);

  // Refit the pooled model on everything for online use.
  pooled_ = ml::make_classifier(cfg_.model);
  pooled_->fit(all, rng);

  // Mobile quadrant: personal models for players with enough history
  // (§IV-B1 "finely establish a training set for each individual player").
  per_player_.clear();
  if (cfg_.category == game::GameCategory::kMobile) {
    std::map<std::uint64_t, std::vector<TrainingRun>> by_player;
    for (const auto& run : corpus_) by_player[run.player_id].push_back(run);
    for (const auto& [pid, runs] : by_player) {
      if (runs.size() < cfg_.min_player_runs) continue;
      const ml::Dataset pd = build_dataset(runs);
      if (pd.empty()) continue;
      auto model = ml::make_classifier(cfg_.model);
      model->fit(pd, rng);
      per_player_[pid] = std::move(model);
    }
  }
}

int StagePredictor::predict_next(const std::vector<int>& exec_history,
                                 std::uint64_t player_id,
                                 std::size_t mode) const {
  COCG_EXPECTS_MSG(trained(), "predict before train");
  const auto row = encoder_.encode(exec_history, player_id, mode);
  auto it = per_player_.find(player_id);
  if (it != per_player_.end()) return it->second->predict(row);
  return pooled_->predict(row);
}

std::vector<int> StagePredictor::predict_sequence(
    const std::vector<int>& exec_history, std::uint64_t player_id,
    std::size_t mode, int n) const {
  COCG_EXPECTS(n >= 0);
  std::vector<int> hist = exec_history;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int next = predict_next(hist, player_id, mode);
    out.push_back(next);
    hist.push_back(next);
  }
  return out;
}

void StagePredictor::record_outcome(bool hit) {
  constexpr double kAlpha = 0.05;  // slow EMA: tens of outcomes to move P
  if (online_n_ == 0) online_acc_ = accuracy_;
  online_acc_ = kAlpha * (hit ? 1.0 : 0.0) + (1.0 - kAlpha) * online_acc_;
  ++online_n_;
}

double StagePredictor::online_accuracy() const {
  return online_n_ == 0 ? accuracy_ : online_acc_;
}

ResourceVector StagePredictor::redundancy() const {
  // S = (1 − P) × M — Eq. 1, with M the game's peak consumption. P is the
  // offline held-out accuracy refined by live outcomes once any exist.
  return (1.0 - online_accuracy()) * profile_->peak_demand;
}

void StagePredictor::replace_model(Rng& rng) {
  // Guard *before* rotating the kind: a failed swap must leave the active
  // model and cfg_.model consistent.
  if (!can_retrain()) {
    throw std::runtime_error(
        "replace_model: predictor was restored without its training corpus; "
        "save the bundle with include_corpus=true to enable retraining");
  }
  switch (cfg_.model) {
    case ml::ModelKind::kDtc: cfg_.model = ml::ModelKind::kRf; break;
    case ml::ModelKind::kRf: cfg_.model = ml::ModelKind::kGbdt; break;
    case ml::ModelKind::kGbdt: cfg_.model = ml::ModelKind::kDtc; break;
  }
  fit_active(rng);
}

void StagePredictor::rebind_profile(const GameProfile* profile) {
  COCG_EXPECTS(profile != nullptr);
  COCG_EXPECTS_MSG(
      profile->num_stage_types() == profile_->num_stage_types(),
      "rebind requires an identical stage-type catalog");
  profile_ = profile;
}

double StagePredictor::evaluate_model(ml::ModelKind kind, Rng& rng) const {
  if (!can_retrain()) {
    throw std::runtime_error(
        "evaluate_model: predictor was restored without its training "
        "corpus, nothing to evaluate on");
  }
  const ml::Dataset all = build_dataset(corpus_);
  auto [train, test] = all.split(cfg_.train_fraction, rng);
  if (train.empty() || test.empty()) return 1.0;
  auto model = ml::make_classifier(kind);
  model->fit(train, rng);

  std::vector<int> pred;
  pred.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(model->predict(test.x(i)));
  }
  return ml::accuracy(test.labels(), pred);
}

// ---------------------------------------------------------------------------
// Artifacts and bundles
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kBundleMagic = "cocg-predictor-v1";
constexpr const char* kBundleVersionPrefix = "cocg-predictor-";

}  // namespace

PredictorArtifact StagePredictor::to_artifact(bool include_corpus) const {
  COCG_EXPECTS_MSG(trained(), "to_artifact before train");
  PredictorArtifact art;
  art.cfg = cfg_;
  art.accuracy = accuracy_;
  art.pooled = pooled_->compiled();
  for (const auto& [pid, model] : per_player_) {
    art.per_player[pid] = model->compiled();
  }
  if (include_corpus) art.corpus = corpus_;
  return art;
}

std::unique_ptr<StagePredictor> StagePredictor::from_artifact(
    const PredictorArtifact& artifact, const GameProfile* profile) {
  if (artifact.pooled == nullptr || !artifact.pooled->trained()) {
    throw std::runtime_error(
        "predictor artifact has no trained pooled model");
  }
  auto p = std::make_unique<StagePredictor>(profile, artifact.cfg);
  const auto width =
      static_cast<int>(p->encoder_.feature_names().size());
  if (artifact.pooled->num_features() > width) {
    throw std::runtime_error(
        "predictor artifact does not match the profile's stage-type "
        "catalog (model expects more features than the encoder emits)");
  }
  if (artifact.pooled->num_classes() >
      static_cast<int>(profile->num_stage_types())) {
    throw std::runtime_error(
        "predictor artifact does not match the profile's stage-type "
        "catalog (model predicts stage types the profile lacks)");
  }
  p->corpus_ = artifact.corpus;
  p->accuracy_ = artifact.accuracy;
  p->pooled_ = ml::make_classifier(artifact.cfg.model);
  p->pooled_->restore(artifact.pooled);
  for (const auto& [pid, forest] : artifact.per_player) {
    auto model = ml::make_classifier(artifact.cfg.model);
    model->restore(forest);
    p->per_player_[pid] = std::move(model);
  }
  return p;
}

void StagePredictor::save_bundle(std::ostream& os,
                                 bool include_corpus) const {
  COCG_EXPECTS_MSG(trained(), "save_bundle before train");
  FullPrecision precision(os);
  os << kBundleMagic << '\n';
  os << "model " << ml::model_kind_name(cfg_.model) << '\n';
  os << "category " << static_cast<int>(cfg_.category) << '\n';
  os << "history_len " << cfg_.encoder.history_len << '\n';
  os << "player_features " << (cfg_.encoder.player_features ? 1 : 0) << '\n';
  os << "mode_feature " << (cfg_.encoder.mode_feature ? 1 : 0) << '\n';
  os << "train_fraction " << cfg_.train_fraction << '\n';
  os << "min_player_runs " << cfg_.min_player_runs << '\n';
  os << "accuracy " << accuracy_ << '\n';
  os << "corpus " << (include_corpus ? corpus_.size() : 0) << '\n';
  if (include_corpus) {
    for (const auto& run : corpus_) {
      os << "run " << run.player_id << ' ' << run.script_idx << ' '
         << run.stage_seq.size();
      for (int st : run.stage_seq) os << ' ' << st;
      os << '\n';
    }
  }
  os << "pooled\n";
  ml::write_model(*pooled_->compiled(), os);
  os << "per_player " << per_player_.size() << '\n';
  for (const auto& [pid, model] : per_player_) {
    os << "player " << pid << '\n';
    ml::write_model(*model->compiled(), os);
  }
  os << "end-predictor\n";
}

PredictorArtifact StagePredictor::read_artifact(LineReader& r) {
  const std::string magic = r.line(kBundleMagic);
  if (magic != kBundleMagic) {
    if (magic.rfind(kBundleVersionPrefix, 0) == 0) {
      r.fail("unsupported predictor format version '" + magic +
             "' (expected " + kBundleMagic + ")");
    }
    r.fail("bad magic '" + magic + "' (expected " +
           std::string(kBundleMagic) + ")");
  }
  PredictorArtifact art;
  {
    auto ls = r.expect("model ");
    const auto name = r.field<std::string>(ls, "model");
    if (!ml::parse_model_kind(name, art.cfg.model)) {
      r.fail("unknown model kind '" + name + "'");
    }
  }
  {
    auto ls = r.expect("category ");
    const int c = r.field<int>(ls, "category");
    if (c < 0 || c > static_cast<int>(game::GameCategory::kMoba)) {
      r.fail("category out of range");
    }
    art.cfg.category = static_cast<game::GameCategory>(c);
  }
  {
    auto ls = r.expect("history_len ");
    art.cfg.encoder.history_len = r.field<int>(ls, "history_len");
  }
  {
    auto ls = r.expect("player_features ");
    art.cfg.encoder.player_features =
        r.field<int>(ls, "player_features") != 0;
  }
  {
    auto ls = r.expect("mode_feature ");
    art.cfg.encoder.mode_feature = r.field<int>(ls, "mode_feature") != 0;
  }
  {
    auto ls = r.expect("train_fraction ");
    art.cfg.train_fraction = r.field<double>(ls, "train_fraction");
    if (art.cfg.train_fraction <= 0.0 || art.cfg.train_fraction >= 1.0) {
      r.fail("train_fraction must be in (0, 1)");
    }
  }
  {
    auto ls = r.expect("min_player_runs ");
    art.cfg.min_player_runs = r.field<std::size_t>(ls, "min_player_runs");
  }
  {
    auto ls = r.expect("accuracy ");
    art.accuracy = r.field<double>(ls, "accuracy");
  }
  std::size_t n_runs = 0;
  {
    auto ls = r.expect("corpus ");
    n_runs = r.field<std::size_t>(ls, "corpus");
  }
  art.corpus.reserve(n_runs);
  for (std::size_t i = 0; i < n_runs; ++i) {
    auto ls = r.expect("run ");
    TrainingRun run;
    run.player_id = r.field<std::uint64_t>(ls, "run player");
    run.script_idx = r.field<std::size_t>(ls, "run script");
    const auto len = r.field<std::size_t>(ls, "run length");
    run.stage_seq.reserve(len);
    for (std::size_t s = 0; s < len; ++s) {
      run.stage_seq.push_back(r.field<int>(ls, "run stage"));
    }
    art.corpus.push_back(std::move(run));
  }
  {
    const std::string pooled = r.line("pooled");
    if (pooled != "pooled") {
      r.fail("expected 'pooled', got '" + pooled + "'");
    }
  }
  art.pooled = std::make_shared<const ml::CompiledForest>(ml::read_model(r));
  std::size_t n_players = 0;
  {
    auto ls = r.expect("per_player ");
    n_players = r.field<std::size_t>(ls, "per_player");
  }
  for (std::size_t i = 0; i < n_players; ++i) {
    auto ls = r.expect("player ");
    const auto pid = r.field<std::uint64_t>(ls, "player id");
    art.per_player[pid] =
        std::make_shared<const ml::CompiledForest>(ml::read_model(r));
  }
  {
    const std::string end = r.line("end-predictor");
    if (end != "end-predictor") {
      r.fail("expected 'end-predictor', got '" + end + "'");
    }
  }
  return art;
}

std::unique_ptr<StagePredictor> StagePredictor::load_bundle(
    LineReader& r, const GameProfile* profile) {
  return from_artifact(read_artifact(r), profile);
}

std::unique_ptr<StagePredictor> StagePredictor::load_bundle(
    std::istream& is, const GameProfile* profile) {
  LineReader r(is, "predictor");
  return load_bundle(r, profile);
}

}  // namespace cocg::core
