#include "core/migration.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace cocg::core {

namespace {

ResourceVector rescale(const ResourceVector& v, double cpu_ratio,
                       double gpu_ratio) {
  ResourceVector out = v;
  out[Dim::kCpuPct] = std::min(100.0, out[Dim::kCpuPct] * cpu_ratio);
  out[Dim::kGpuPct] = std::min(100.0, out[Dim::kGpuPct] * gpu_ratio);
  return out;
}

}  // namespace

GameProfile migrate_profile(const GameProfile& profile,
                            const hw::ServerSpec& from,
                            const hw::ServerSpec& to) {
  COCG_EXPECTS(from.cpu_perf > 0.0 && from.gpu_perf > 0.0);
  COCG_EXPECTS(to.cpu_perf > 0.0 && to.gpu_perf > 0.0);
  // Utilization on `to` = utilization on `from` × (from_perf / to_perf).
  const double cpu_ratio = from.cpu_perf / to.cpu_perf;
  const double gpu_ratio = from.gpu_perf / to.gpu_perf;

  GameProfile out = profile;
  for (auto& c : out.clusters) {
    c.centroid = rescale(c.centroid, cpu_ratio, gpu_ratio);
  }
  for (auto& st : out.stage_types) {
    st.peak_demand = rescale(st.peak_demand, cpu_ratio, gpu_ratio);
    st.mean_demand = rescale(st.mean_demand, cpu_ratio, gpu_ratio);
  }
  out.peak_demand = rescale(out.peak_demand, cpu_ratio, gpu_ratio);
  if (obs::enabled()) {
    obs::metrics().counter("migration.profiles").add();
    obs::events().record(
        0, obs::MigrationEvent{profile.game_name, from.name, to.name});
  }
  return out;
}

TrainedGame migrate_trained_game(TrainedGame&& tg,
                                 const hw::ServerSpec& from,
                                 const hw::ServerSpec& to,
                                 const game::GameSpec* scaled) {
  COCG_EXPECTS(tg.profile != nullptr && tg.predictor != nullptr);
  COCG_EXPECTS(scaled != nullptr);
  TrainedGame out = std::move(tg);
  out.profile =
      std::make_shared<GameProfile>(migrate_profile(*out.profile, from, to));
  out.predictor->rebind_profile(out.profile.get());
  out.spec = scaled;
  return out;
}

double profile_centroid_error(const GameProfile& a, const GameProfile& b) {
  COCG_EXPECTS(a.num_clusters() == b.num_clusters());
  COCG_EXPECTS(a.num_clusters() > 0);
  // Clusters may be numbered differently across independent fits: match
  // greedily by nearest centroid.
  double total = 0.0;
  for (const auto& ca : a.clusters) {
    double best = std::numeric_limits<double>::max();
    for (const auto& cb : b.clusters) {
      best = std::min(best, ca.centroid.distance(cb.centroid, a.norm_scale));
    }
    total += best;
  }
  return total / static_cast<double>(a.num_clusters());
}

}  // namespace cocg::core
