#include "core/frame_profiler.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "ml/kmeans.h"

namespace cocg::core {

namespace {

ml::Point to_point(const ResourceVector& v, const ResourceVector& scale) {
  ml::Point p(kNumDims);
  for (std::size_t i = 0; i < kNumDims; ++i) p[i] = v.at(i) / scale.at(i);
  return p;
}

ResourceVector from_point(const ml::Point& p, const ResourceVector& scale) {
  ResourceVector v;
  for (std::size_t i = 0; i < kNumDims; ++i) v.at(i) = p[i] * scale.at(i);
  return v;
}

}  // namespace

ProfilerOutput FrameProfiler::profile(
    const std::string& game_name,
    const std::vector<telemetry::Trace>& traces, Rng& rng) const {
  COCG_EXPECTS_MSG(!traces.empty(), "profiling needs at least one trace");

  ProfilerOutput out;
  out.profile.game_name = game_name;
  out.profile.norm_scale = default_norm_scale();

  // 1. Slice all traces into 5-second frames.
  std::vector<std::vector<telemetry::FrameSlice>> sliced;
  std::vector<ml::Point> points;
  for (const auto& trace : traces) {
    COCG_EXPECTS(!trace.empty());
    sliced.push_back(trace.to_frame_slices(cfg_.frame_slice_ms));
    for (const auto& fs : sliced.back()) {
      points.push_back(to_point(fs.mean_usage, out.profile.norm_scale));
    }
  }
  COCG_CHECK(!points.empty());

  // 2. Choose K (elbow over the SSE curve unless forced) and cluster.
  out.sse_by_k = ml::sse_curve(points, cfg_.k_max, rng, cfg_.kmeans_restarts);
  out.chosen_k = cfg_.forced_k > 0
                     ? cfg_.forced_k
                     : ml::pick_elbow(out.sse_by_k, cfg_.elbow_min_gain);
  out.chosen_k = std::min<int>(out.chosen_k,
                               static_cast<int>(points.size()));
  ml::KMeansConfig kcfg;
  kcfg.k = out.chosen_k;
  kcfg.restarts = cfg_.kmeans_restarts;
  const auto km = ml::KMeans::fit(points, kcfg, rng);

  // 3. Build cluster infos; identify the loading signature
  //    (high CPU, near-idle GPU — Observation 3).
  double max_gpu = 0.0;
  for (const auto& c : km.centroids) {
    max_gpu = std::max(
        max_gpu, from_point(c, out.profile.norm_scale)[Dim::kGpuPct]);
  }
  for (int c = 0; c < out.chosen_k; ++c) {
    ClusterInfo info;
    info.id = c;
    info.centroid = from_point(km.centroids[static_cast<std::size_t>(c)],
                               out.profile.norm_scale);
    info.frames = static_cast<std::size_t>(
        std::count(km.assignment.begin(), km.assignment.end(), c));
    const double gpu = info.centroid[Dim::kGpuPct];
    const double cpu = info.centroid[Dim::kCpuPct];
    info.loading = gpu < cfg_.loading_gpu_pct &&
                   (max_gpu <= 0.0 || gpu < cfg_.loading_gpu_frac * max_gpu) &&
                   cpu > cfg_.loading_cpu_floor_pct &&
                   cpu > cfg_.loading_cpu_gpu_ratio * gpu;
    out.profile.clusters.push_back(info);
  }

  // 4. Segment stages per trace at loading boundaries (Observation 2).
  //    A stage's signature keeps only clusters covering a meaningful share
  //    of its frames; 1-frame execution blips are boundary artifacts.
  std::size_t point_idx = 0;
  for (std::size_t ti = 0; ti < sliced.size(); ++ti) {
    const auto& frames = sliced[ti];
    std::size_t i = 0;
    while (i < frames.size()) {
      const int first_cluster = km.assignment[point_idx + i];
      const bool loading =
          out.profile.clusters[static_cast<std::size_t>(first_cluster)]
              .loading;
      std::map<int, std::size_t> votes;
      const std::size_t start = i;
      while (i < frames.size()) {
        const int c = km.assignment[point_idx + i];
        const bool c_loading =
            out.profile.clusters[static_cast<std::size_t>(c)].loading;
        if (c_loading != loading) break;
        ++votes[c];
        ++i;
      }
      const std::size_t n_frames = i - start;
      if (!loading && n_frames < cfg_.min_exec_frames) continue;

      std::set<int> clusters;
      for (const auto& [c, v] : votes) {
        if (static_cast<double>(v) >=
            cfg_.signature_min_frac * static_cast<double>(n_frames)) {
          clusters.insert(c);
        }
      }
      if (clusters.empty()) clusters.insert(first_cluster);

      StageOccurrence occ;
      occ.trace_idx = ti;
      occ.start = frames[start].start;
      occ.end = frames[i - 1].end;
      occ.clusters.assign(clusters.begin(), clusters.end());
      occ.loading = loading;
      out.occurrences.push_back(occ);
    }
    point_idx += frames.size();
  }

  // 5. Catalog stage types by cluster-combination signature. Loading
  //    signatures collapse to one canonical loading type.
  std::map<std::vector<int>, int> type_of_sig;
  auto type_id_for = [&](const StageOccurrence& occ) -> int {
    std::vector<int> key = occ.clusters;
    if (occ.loading) key = {-1};  // canonical loading signature
    auto it = type_of_sig.find(key);
    if (it != type_of_sig.end()) return it->second;
    const int id = static_cast<int>(out.profile.stage_types.size());
    StageTypeInfo st;
    st.id = id;
    st.loading = occ.loading;
    st.clusters = occ.clusters;
    out.profile.stage_types.push_back(st);
    type_of_sig.emplace(std::move(key), id);
    if (occ.loading) out.profile.loading_stage_type = id;
    return id;
  };

  for (auto& occ : out.occurrences) {
    occ.stage_type = type_id_for(occ);
    auto& st =
        out.profile.stage_types[static_cast<std::size_t>(occ.stage_type)];
    const DurationMs dur = occ.end - occ.start;
    st.mean_duration_ms += dur;  // running sum; divided below
    st.max_duration_ms = std::max(st.max_duration_ms, dur);
    ++st.occurrences;
  }

  // 6. Demand statistics per stage type.
  for (auto& st : out.profile.stage_types) {
    if (st.occurrences > 0) {
      st.mean_duration_ms /= static_cast<DurationMs>(st.occurrences);
    }
    ResourceVector peak, mean;
    int n = 0;
    for (int c : st.clusters) {
      const auto& ci = out.profile.clusters[static_cast<std::size_t>(c)];
      peak = ResourceVector::max(peak, ci.centroid);
      mean += ci.centroid;
      ++n;
    }
    if (n > 0) mean *= 1.0 / n;
    st.peak_demand = peak;
    st.mean_demand = mean;
    if (!st.loading) {
      out.profile.peak_demand =
          ResourceVector::max(out.profile.peak_demand, st.peak_demand);
    }
  }

  // 7. Per-trace stage-type sequences for the predictor.
  out.stage_sequences.assign(sliced.size(), {});
  for (const auto& occ : out.occurrences) {
    out.stage_sequences[occ.trace_idx].push_back(occ.stage_type);
  }

  COCG_ENSURES(out.profile.num_stage_types() >= 1);
  return out;
}

std::vector<int> infer_stage_sequence(const GameProfile& profile,
                                      const telemetry::Trace& trace,
                                      DurationMs slice_ms) {
  COCG_EXPECTS(!trace.empty());
  // Mirror FrameProfiler's segmentation hygiene.
  const ProfilerConfig defaults;
  const auto frames = trace.to_frame_slices(slice_ms);

  std::vector<int> seq;
  std::size_t i = 0;
  while (i < frames.size()) {
    const int first = profile.match_cluster(frames[i].mean_usage);
    const bool loading = profile.cluster(first).loading;
    std::map<int, std::size_t> votes;
    const std::size_t start = i;
    while (i < frames.size()) {
      const int c = profile.match_cluster(frames[i].mean_usage);
      if (profile.cluster(c).loading != loading) break;
      ++votes[c];
      ++i;
    }
    const std::size_t n_frames = i - start;
    if (loading) {
      if (profile.loading_stage_type >= 0) {
        seq.push_back(profile.loading_stage_type);
      }
      continue;
    }
    if (n_frames < defaults.min_exec_frames) continue;

    std::set<int> clusters;
    for (const auto& [c, v] : votes) {
      if (static_cast<double>(v) >=
          defaults.signature_min_frac * static_cast<double>(n_frames)) {
        clusters.insert(c);
      }
    }
    if (clusters.empty()) clusters.insert(first);
    std::vector<int> sig(clusters.begin(), clusters.end());
    int st = profile.match_stage_signature(sig);
    if (st < 0) {
      // Unseen combination: label by the majority cluster's most specific
      // containing type.
      int best_cluster = sig[0];
      std::size_t best_votes = 0;
      for (const auto& [c, v] : votes) {
        if (v > best_votes) {
          best_votes = v;
          best_cluster = c;
        }
      }
      st = profile.match_execution_stage_for_cluster(best_cluster);
    }
    if (st >= 0) seq.push_back(st);
  }
  return seq;
}

}  // namespace cocg::core
