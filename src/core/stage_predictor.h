// ML-based stage predictor (§IV-B).
//
// Offline: builds (history → next execution stage) training pairs from
// profiled stage sequences, selecting samples per the Fig. 7 game-category
// quadrant (web: pool everything; mobile: per-player datasets; console:
// whole-process pooling; MMORPG/MOBA: cohort pooling with player features).
// Trains one of DTC / RF / GBDT; held-out accuracy P feeds the redundancy
// rule S = (1 − P) × M (Eq. 1).
//
// Online: predict_next() returns the execution stage expected after the
// current loading stage; replace_model() hot-swaps the algorithm when
// errors persist (the "replacing model" fallback, §IV-B2).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "common/resources.h"
#include "common/rng.h"
#include "common/textio.h"
#include "core/features.h"
#include "core/game_profile.h"
#include "game/spec.h"
#include "ml/classifier.h"

namespace cocg::core {

struct PredictorConfig {
  ml::ModelKind model = ml::ModelKind::kDtc;
  EncoderConfig encoder;
  double train_fraction = 0.75;  ///< §V-D2: 75/25 split
  game::GameCategory category = game::GameCategory::kWeb;
  /// Minimum runs a player needs for a personal model (mobile quadrant);
  /// thinner players fall back to the pooled model.
  std::size_t min_player_runs = 3;
};

/// One realized run used for training.
struct TrainingRun {
  std::vector<int> stage_seq;  ///< catalog stage types, loading included
  std::uint64_t player_id = 0;
  std::size_t script_idx = 0;  ///< launched mode (Table I script)
};

/// Everything a trained predictor is, minus the profile pointer: the
/// immutable compiled models plus config and held-out accuracy P, and
/// (optionally) the training corpus so replace_model can still retrain.
/// This is the in-memory form of the on-disk predictor bundle and the
/// unit the core ModelBank shares across sessions and fleet shards — the
/// CompiledForest pointers are aliased, never deep-copied.
struct PredictorArtifact {
  PredictorConfig cfg;
  double accuracy = 0.0;
  std::shared_ptr<const ml::CompiledForest> pooled;
  std::map<std::uint64_t, std::shared_ptr<const ml::CompiledForest>>
      per_player;
  std::vector<TrainingRun> corpus;  ///< empty → retraining unavailable
};

class StagePredictor {
 public:
  /// `profile` must outlive the predictor.
  StagePredictor(const GameProfile* profile, PredictorConfig cfg);

  /// Train on realized runs; keeps the corpus so replace_model can retrain.
  void train(const std::vector<TrainingRun>& runs, Rng& rng);

  bool trained() const { return pooled_ != nullptr; }

  /// Predict the next execution stage type given the execution-stage
  /// history of a running session.
  int predict_next(const std::vector<int>& exec_history,
                   std::uint64_t player_id, std::size_t mode) const;

  /// Iterated prediction of the next `n` execution stages (Algorithm 1's
  /// forward scan).
  std::vector<int> predict_sequence(const std::vector<int>& exec_history,
                                    std::uint64_t player_id, std::size_t mode,
                                    int n) const;

  /// Held-out accuracy P of the pooled model (Fig. 15; Eq. 1's P).
  double accuracy() const { return accuracy_; }

  /// Online outcome feedback (extension beyond the paper): loading-exit
  /// prediction hits/misses observed in production refine P, so Eq. 1's
  /// redundancy adapts when live behaviour drifts from the training
  /// corpus. Blended as an EMA over outcomes, seeded by the offline P.
  void record_outcome(bool hit);
  double online_accuracy() const;
  std::size_t online_outcomes() const { return online_n_; }

  /// Redundancy S = (1 − P) × M applied to an allocation (Eq. 1).
  ResourceVector redundancy() const;

  ml::ModelKind model_kind() const { return cfg_.model; }

  /// Whether replace_model/evaluate_model can retrain. False when the
  /// predictor was restored from a bundle saved without its corpus —
  /// callers (e.g. the CoCG scheduler's §IV-B2 fallback) must check this
  /// before asking for a model swap.
  bool can_retrain() const { return !corpus_.empty(); }

  /// Swap to the next algorithm in {DTC, RF, GBDT} and retrain (§IV-B2).
  /// Throws std::runtime_error — without changing the active model — when
  /// !can_retrain().
  void replace_model(Rng& rng);

  /// Evaluate a specific model kind on this predictor's corpus without
  /// changing the active model (Fig. 15 sweeps). Throws
  /// std::runtime_error when !can_retrain().
  double evaluate_model(ml::ModelKind kind, Rng& rng) const;

  /// Snapshot the trained state. Compiled models are shared, not copied;
  /// the corpus is copied unless excluded (smaller artifact, but the
  /// restored predictor cannot retrain — see can_retrain()).
  PredictorArtifact to_artifact(bool include_corpus = true) const;

  /// Reconstruct a trained predictor from an artifact. `profile` must
  /// outlive the predictor, exactly as for the training constructor.
  /// Throws std::runtime_error if the artifact is untrained or does not
  /// match the profile's stage-type catalog.
  static std::unique_ptr<StagePredictor> from_artifact(
      const PredictorArtifact& artifact, const GameProfile* profile);

  /// Serialize the trained state as a self-delimiting text block
  /// (versioned, human-diffable, embeddable inside larger bundles).
  void save_bundle(std::ostream& os, bool include_corpus = true) const;

  /// Restore from save_bundle output. Throws std::runtime_error with a
  /// line/field diagnostic on truncated, corrupt, or version-skewed input.
  static std::unique_ptr<StagePredictor> load_bundle(
      std::istream& is, const GameProfile* profile);
  /// Embedded form: consumes one predictor block from an outer artifact's
  /// reader (used by core/model_bank).
  static std::unique_ptr<StagePredictor> load_bundle(
      LineReader& r, const GameProfile* profile);
  /// Parse just the artifact, without binding it to a profile.
  static PredictorArtifact read_artifact(LineReader& r);

  const FeatureEncoder& encoder() const { return encoder_; }

  /// Re-point the predictor at a migrated profile (§IV-D): the catalog
  /// (stage-type ids and count) must be identical — only the resource
  /// amounts may differ. Used when a trained bundle moves to another SKU.
  void rebind_profile(const GameProfile* profile);

 private:
  /// Strip loading stages: prediction operates on execution stages.
  std::vector<int> exec_only(const std::vector<int>& seq) const;
  ml::Dataset build_dataset(const std::vector<TrainingRun>& runs) const;
  void fit_active(Rng& rng);

  const GameProfile* profile_;
  PredictorConfig cfg_;
  FeatureEncoder encoder_;
  std::vector<TrainingRun> corpus_;

  std::unique_ptr<ml::Classifier> pooled_;
  std::map<std::uint64_t, std::unique_ptr<ml::Classifier>> per_player_;
  double accuracy_ = 0.0;
  double online_acc_ = 0.0;
  std::size_t online_n_ = 0;
};

}  // namespace cocg::core
