// ML-based stage predictor (§IV-B).
//
// Offline: builds (history → next execution stage) training pairs from
// profiled stage sequences, selecting samples per the Fig. 7 game-category
// quadrant (web: pool everything; mobile: per-player datasets; console:
// whole-process pooling; MMORPG/MOBA: cohort pooling with player features).
// Trains one of DTC / RF / GBDT; held-out accuracy P feeds the redundancy
// rule S = (1 − P) × M (Eq. 1).
//
// Online: predict_next() returns the execution stage expected after the
// current loading stage; replace_model() hot-swaps the algorithm when
// errors persist (the "replacing model" fallback, §IV-B2).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/resources.h"
#include "common/rng.h"
#include "core/features.h"
#include "core/game_profile.h"
#include "game/spec.h"
#include "ml/classifier.h"

namespace cocg::core {

struct PredictorConfig {
  ml::ModelKind model = ml::ModelKind::kDtc;
  EncoderConfig encoder;
  double train_fraction = 0.75;  ///< §V-D2: 75/25 split
  game::GameCategory category = game::GameCategory::kWeb;
  /// Minimum runs a player needs for a personal model (mobile quadrant);
  /// thinner players fall back to the pooled model.
  std::size_t min_player_runs = 3;
};

/// One realized run used for training.
struct TrainingRun {
  std::vector<int> stage_seq;  ///< catalog stage types, loading included
  std::uint64_t player_id = 0;
  std::size_t script_idx = 0;  ///< launched mode (Table I script)
};

class StagePredictor {
 public:
  /// `profile` must outlive the predictor.
  StagePredictor(const GameProfile* profile, PredictorConfig cfg);

  /// Train on realized runs; keeps the corpus so replace_model can retrain.
  void train(const std::vector<TrainingRun>& runs, Rng& rng);

  bool trained() const { return pooled_ != nullptr; }

  /// Predict the next execution stage type given the execution-stage
  /// history of a running session.
  int predict_next(const std::vector<int>& exec_history,
                   std::uint64_t player_id, std::size_t mode) const;

  /// Iterated prediction of the next `n` execution stages (Algorithm 1's
  /// forward scan).
  std::vector<int> predict_sequence(const std::vector<int>& exec_history,
                                    std::uint64_t player_id, std::size_t mode,
                                    int n) const;

  /// Held-out accuracy P of the pooled model (Fig. 15; Eq. 1's P).
  double accuracy() const { return accuracy_; }

  /// Online outcome feedback (extension beyond the paper): loading-exit
  /// prediction hits/misses observed in production refine P, so Eq. 1's
  /// redundancy adapts when live behaviour drifts from the training
  /// corpus. Blended as an EMA over outcomes, seeded by the offline P.
  void record_outcome(bool hit);
  double online_accuracy() const;
  std::size_t online_outcomes() const { return online_n_; }

  /// Redundancy S = (1 − P) × M applied to an allocation (Eq. 1).
  ResourceVector redundancy() const;

  ml::ModelKind model_kind() const { return cfg_.model; }

  /// Swap to the next algorithm in {DTC, RF, GBDT} and retrain (§IV-B2).
  void replace_model(Rng& rng);

  /// Evaluate a specific model kind on this predictor's corpus without
  /// changing the active model (Fig. 15 sweeps).
  double evaluate_model(ml::ModelKind kind, Rng& rng) const;

  const FeatureEncoder& encoder() const { return encoder_; }

  /// Re-point the predictor at a migrated profile (§IV-D): the catalog
  /// (stage-type ids and count) must be identical — only the resource
  /// amounts may differ. Used when a trained bundle moves to another SKU.
  void rebind_profile(const GameProfile* profile);

 private:
  /// Strip loading stages: prediction operates on execution stages.
  std::vector<int> exec_only(const std::vector<int>& seq) const;
  ml::Dataset build_dataset(const std::vector<TrainingRun>& runs) const;
  void fit_active(Rng& rng);

  const GameProfile* profile_;
  PredictorConfig cfg_;
  FeatureEncoder encoder_;
  std::vector<TrainingRun> corpus_;

  std::unique_ptr<ml::Classifier> pooled_;
  std::map<std::uint64_t, std::unique_ptr<ml::Classifier>> per_player_;
  double accuracy_ = 0.0;
  double online_acc_ = 0.0;
  std::size_t online_n_ = 0;
};

}  // namespace cocg::core
