// Name → scheduler construction, shared by the CLI tools and benches.
//
// Two sources of trained models: a freshly trained suite (the legacy
// retrain-per-use path) or a ModelBank (the train-once path) — the second
// overload instantiates per-scheduler TrainedGames from the bank, sharing
// the compiled forests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model_bank.h"
#include "core/offline.h"
#include "platform/scheduler.h"

namespace cocg::core {

/// "cocg" | "vbp" | "gaugur" | "improved". Throws std::runtime_error on
/// an unknown name.
std::unique_ptr<platform::Scheduler> make_named_scheduler(
    const std::string& name, std::map<std::string, TrainedGame> models);

/// Same, with the models materialized from `bank` for every game in
/// `suite` (which must outlive the scheduler).
std::unique_ptr<platform::Scheduler> make_named_scheduler(
    const std::string& name, const ModelBank& bank,
    const std::vector<game::GameSpec>& suite);

}  // namespace cocg::core
