// Game distributor — Algorithm 1 (§IV-C1).
//
// Decides whether a pending game can join a server that is already running
// games. Interpretation of Algorithm 1's quantities, calibrated against the
// paper's own co-location outcomes (Fig. 9 admits Genshin+DOTA2, Fig. 11
// admits DOTA2+DMC under CoCG only, and inserts short Genshin runs between
// CSGO peaks):
//
//  * per-task forward scan (lines 10–24): each hosted session's monitor
//    yields its predicted stage sequence; we reduce it to a time-weighted
//    *expected* demand vector (stage mean demand × catalog mean duration,
//    loading stages' CPU discounted — loading is elastic, it stretches
//    rather than contends);
//  * admission (line 18's M + Consumption_Si ≤ Total): the sum of hosted
//    expected demands plus the candidate's expected demand must stay under
//    the capacity limit, and the instant of admission must not be
//    oversubscribed (hosted current-stage peaks + the candidate's opening
//    loading draw);
//  * "distinguish game length" (§IV-C2): a short game may additionally be
//    slotted in whenever the hosted sessions' *current* stages leave
//    instantaneous room for its whole peak — the gap before the next
//    predicted peak is the insertion window, residual overlap is §IV-D's
//    bounded, compensated degradation.
#pragma once

#include <string>
#include <vector>

#include "common/resources.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace cocg::core {

/// Forward view of one hosted session.
struct SessionOutlook {
  ResourceVector current_peak;  ///< current stage's peak demand
  ResourceVector expected;      ///< time-weighted expected demand (horizon)
  bool in_loading = false;
  /// Expected time until the current stage ends (catalog mean − elapsed).
  DurationMs expected_remaining_ms = 0;
};

/// Forward view of the admission candidate.
struct CandidateOutlook {
  ResourceVector opening;   ///< initialization-loading draw
  ResourceVector peak;      ///< max predicted stage peak (with redundancy)
  ResourceVector expected;  ///< time-weighted expected demand
  bool short_game = false;
  DurationMs expected_duration_ms = 0;
};

struct DistributorConfig {
  int horizon = 4;               ///< Algorithm 1's Total.iteration
  /// Admission headroom: expected combined demand must stay under this
  /// fraction of capacity. Slightly tighter than the regulator's 95%
  /// utilization bound so residual peak interleaving stays within §IV-D's
  /// 5%-of-time degradation budget.
  double capacity_limit = 0.90;
  /// Loading stages stretch instead of contending: their CPU draw counts
  /// at this factor in instantaneous checks.
  double loading_cpu_elasticity = 0.5;
  bool short_game_fastpath = true;  ///< §IV-C2 gap insertion
};

struct AdmitDecision {
  bool admit = false;
  std::string reason;
};

class Distributor {
 public:
  explicit Distributor(DistributorConfig cfg = {});

  /// One capacity view (a single GPU's view of a server).
  AdmitDecision decide(const ResourceVector& capacity,
                       const std::vector<SessionOutlook>& hosted,
                       const CandidateOutlook& candidate) const;

  const DistributorConfig& config() const { return cfg_; }

 private:
  DistributorConfig cfg_;
  // Per-verdict counters for Algorithm 1's capacity check (one per fixed
  // reason string; incremented per view examined).
  obs::Counter obs_admit_empty_;
  obs::Counter obs_admit_short_;
  obs::Counter obs_admit_fit_;
  obs::Counter obs_reject_alone_;
  obs::Counter obs_reject_now_;
  obs::Counter obs_reject_expected_;
};

}  // namespace cocg::core
