// Frame-grained game profiler (§IV-A).
//
// Pipeline: telemetry traces → 5-second frame slices → K-means clustering in
// normalized resource space (K by elbow, Fig. 14, unless forced) → loading-
// cluster identification by the high-CPU/low-GPU signature (Observation 3)
// → stage segmentation at loading boundaries (Observation 2) → stage-type
// catalog as cluster combinations (§IV-A2).
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/game_profile.h"
#include "telemetry/trace.h"

namespace cocg::core {

struct ProfilerConfig {
  DurationMs frame_slice_ms = kFrameSliceMs;  ///< the paper's 5 s
  int k_max = 8;             ///< elbow search upper bound
  int forced_k = 0;          ///< >0 skips the elbow and uses this K
  double elbow_min_gain = 0.30;
  int kmeans_restarts = 6;
  /// A cluster joins a stage's signature only when it covers at least this
  /// fraction of the stage's frames — boundary-blended and transient-spike
  /// frames otherwise explode the 2^N stage-type space (§IV-A2 notes real
  /// games stay under 2N types).
  double signature_min_frac = 0.20;
  /// Execution-stage occurrences shorter than this many frames are
  /// transition artifacts (a 5 s slice straddling a loading boundary) and
  /// are dropped from the catalog and the sequences.
  std::size_t min_exec_frames = 2;
  /// Loading signature: GPU below this absolute % AND below this fraction
  /// of the busiest cluster's GPU, with CPU above cpu_floor_pct and the
  /// CPU:GPU ratio above cpu_gpu_ratio (loading burns CPU with a black
  /// screen; low-intensity gameplay does not).
  double loading_gpu_pct = 15.0;
  double loading_gpu_frac = 0.35;
  double loading_cpu_floor_pct = 20.0;
  double loading_cpu_gpu_ratio = 3.0;
};

/// One segmented stage occurrence inside a trace.
struct StageOccurrence {
  std::size_t trace_idx = 0;
  TimeMs start = 0;
  TimeMs end = 0;
  std::vector<int> clusters;  ///< sorted unique clusters observed
  bool loading = false;
  int stage_type = -1;  ///< filled after catalog construction
};

struct ProfilerOutput {
  GameProfile profile;
  std::vector<StageOccurrence> occurrences;  ///< across all input traces
  std::vector<double> sse_by_k;              ///< elbow curve (Fig. 14)
  int chosen_k = 0;
  /// Per-trace realized stage-type sequences (predictor training input).
  std::vector<std::vector<int>> stage_sequences;
};

class FrameProfiler {
 public:
  explicit FrameProfiler(ProfilerConfig cfg = {}) : cfg_(cfg) {}

  /// Profile a game from one or more solo traces.
  ProfilerOutput profile(const std::string& game_name,
                         const std::vector<telemetry::Trace>& traces,
                         Rng& rng) const;

 private:
  ProfilerConfig cfg_;
};

/// Re-segment a (new) trace against an existing profile: slice, match each
/// frame to its nearest cluster, cut stages at loading boundaries, and
/// label each stage by signature (falling back to the most specific
/// containing type for unseen signatures). Used to turn bulk runs into
/// predictor training sequences.
std::vector<int> infer_stage_sequence(const GameProfile& profile,
                                      const telemetry::Trace& trace,
                                      DurationMs slice_ms = kFrameSliceMs);

}  // namespace cocg::core
