#include "core/capacity_planner.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace cocg::core {

CapacityPlanner::CapacityPlanner(
    const std::map<std::string, TrainedGame>* models, PlannerConfig cfg)
    : models_(models), cfg_(cfg) {
  COCG_EXPECTS(models != nullptr);
  COCG_EXPECTS_MSG(!models->empty(), "planner needs at least one profile");
  COCG_EXPECTS(cfg.capacity_limit > 0.0);
  COCG_EXPECTS(cfg.max_sessions_per_view >= 1);
}

ResourceVector CapacityPlanner::expected_demand(
    const std::string& game) const {
  auto it = models_->find(game);
  COCG_EXPECTS_MSG(it != models_->end(), "no profile for " + game);
  const GameProfile& p = *it->second.profile;
  ResourceVector weighted;
  double total_ms = 0.0;
  for (const auto& st : p.stage_types) {
    const double w =
        static_cast<double>(std::max<DurationMs>(st.mean_duration_ms, 1000)) *
        static_cast<double>(std::max<std::size_t>(st.occurrences, 1));
    weighted += st.mean_demand * w;
    total_ms += w;
  }
  if (total_ms <= 0.0) return p.peak_demand;
  return weighted * (1.0 / total_ms);
}

ResourceVector CapacityPlanner::combined(
    const std::vector<std::string>& games) const {
  ResourceVector total;
  for (const auto& g : games) total += expected_demand(g);
  return total;
}

bool CapacityPlanner::mix_fits(const std::vector<std::string>& games,
                               const hw::ServerSpec& sku) const {
  if (games.empty()) return true;
  if (static_cast<int>(games.size()) > cfg_.max_sessions_per_view) {
    return false;
  }
  const ResourceVector limit =
      sku.per_gpu_capacity() * cfg_.capacity_limit;
  return combined(games).fits_within(limit);
}

int CapacityPlanner::max_concurrent(const std::string& game,
                                    const hw::ServerSpec& sku) const {
  std::vector<std::string> mix;
  for (int n = 1; n <= cfg_.max_sessions_per_view; ++n) {
    mix.push_back(game);
    if (!mix_fits(mix, sku)) return n - 1;
  }
  return cfg_.max_sessions_per_view;
}

std::vector<MixPlan> CapacityPlanner::maximal_mixes(
    const hw::ServerSpec& sku) const {
  std::vector<std::string> titles;
  for (const auto& [name, tg] : *models_) titles.push_back(name);

  // Depth-first enumeration of admissible multisets (non-decreasing title
  // index prevents permutation duplicates).
  std::vector<MixPlan> out;
  std::vector<std::string> cur;
  const ResourceVector cap = sku.per_gpu_capacity();

  std::function<void(std::size_t)> walk = [&](std::size_t from) {
    // Recurse over extensions with non-decreasing title index (avoids
    // permutation duplicates); maximality is judged against ALL titles.
    for (std::size_t i = from; i < titles.size(); ++i) {
      cur.push_back(titles[i]);
      if (mix_fits(cur, sku)) walk(i);
      cur.pop_back();
    }
    bool maximal = !cur.empty();
    for (const auto& t : titles) {
      cur.push_back(t);
      const bool fits = mix_fits(cur, sku);
      cur.pop_back();
      if (fits) {
        maximal = false;
        break;
      }
    }
    if (maximal) {
      MixPlan plan;
      plan.games = cur;
      std::sort(plan.games.begin(), plan.games.end());
      plan.expected_total = combined(cur);
      plan.headroom = 1.0;
      for (std::size_t d = 0; d < kNumDims; ++d) {
        plan.headroom = std::min(
            plan.headroom, 1.0 - plan.expected_total.at(d) / cap.at(d));
      }
      out.push_back(std::move(plan));
    }
  };
  walk(0);

  // Deduplicate (different DFS paths can yield the same multiset).
  std::sort(out.begin(), out.end(),
            [](const MixPlan& a, const MixPlan& b) {
              return a.games < b.games;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const MixPlan& a, const MixPlan& b) {
                          return a.games == b.games;
                        }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const MixPlan& a, const MixPlan& b) {
              return a.headroom > b.headroom;
            });
  return out;
}

}  // namespace cocg::core
