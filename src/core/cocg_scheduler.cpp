#include "core/cocg_scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "schedcheck/session.h"

namespace cocg::core {

CocgScheduler::CocgScheduler(std::map<std::string, TrainedGame> models,
                             CocgConfig cfg)
    : models_(std::move(models)),
      cfg_(cfg),
      distributor_(cfg.distributor),
      regulator_(cfg.regulator),
      rng_(cfg.seed) {
  COCG_EXPECTS_MSG(!models_.empty(), "CoCG needs at least one trained game");
  for (const auto& [name, tg] : models_) {
    COCG_EXPECTS_MSG(tg.profile != nullptr && tg.predictor != nullptr,
                     "TrainedGame must be fully populated");
  }
  auto& reg = obs::metrics();
  obs_accepted_ = reg.counter("scheduler.admit.accepted");
  obs_rejected_ = reg.counter("scheduler.admit.rejected");
  obs_holds_ = reg.counter("regulator.holds");
  obs_replacements_ = reg.counter("scheduler.model_replacements");
  prof_predictor_ = obs::stage_timer(obs::Stage::kPredictorDecide);
  prof_distributor_ = obs::stage_timer(obs::Stage::kDistributorDecide);
  prof_regulator_ = obs::stage_timer(obs::Stage::kRegulator);
}

const TrainedGame& CocgScheduler::model(const std::string& game) const {
  auto it = models_.find(game);
  COCG_EXPECTS_MSG(it != models_.end(), "no trained model for " + game);
  return it->second;
}

ResourceVector CocgScheduler::view_capacity(
    const platform::PlatformView& view, ServerId server, int gpu) const {
  const auto& srv = view.server(server);
  ResourceVector cap = srv.spec().per_gpu_capacity();
  // Sessions pinned to other GPUs still drain the shared CPU/RAM pools.
  double other_cpu = 0.0, other_ram = 0.0;
  for (int g = 0; g < srv.spec().num_gpus; ++g) {
    if (g == gpu) continue;
    for (SessionId sid : srv.sessions_on_gpu(g)) {
      const auto& alloc = srv.placement(sid).allocation;
      other_cpu += alloc[Dim::kCpuPct];
      other_ram += alloc[Dim::kRamMb];
    }
  }
  cap[Dim::kCpuPct] = std::max(0.0, cap[Dim::kCpuPct] - other_cpu);
  cap[Dim::kRamMb] = std::max(0.0, cap[Dim::kRamMb] - other_ram);
  return cap;
}

namespace {

/// Time-weighted expected demand of a stage-type sequence: each stage's
/// mean demand weighted by its catalog mean duration, with one loading
/// stage between consecutive execution stages.
ResourceVector expected_demand(const GameProfile& profile,
                               const std::vector<int>& exec_seq) {
  ResourceVector weighted;
  double total_ms = 0.0;
  auto add_stage = [&](int type_id) {
    if (type_id < 0 || type_id >= profile.num_stage_types()) return;
    const auto& st = profile.stage_type(type_id);
    const double w = static_cast<double>(std::max<DurationMs>(
        st.mean_duration_ms, 1000));
    weighted += st.mean_demand * w;
    total_ms += w;
  };
  for (std::size_t i = 0; i < exec_seq.size(); ++i) {
    add_stage(exec_seq[i]);
    if (profile.loading_stage_type >= 0 && i + 1 < exec_seq.size()) {
      add_stage(profile.loading_stage_type);
    }
  }
  if (total_ms <= 0.0) return profile.peak_demand;
  return weighted * (1.0 / total_ms);
}

}  // namespace

SessionOutlook CocgScheduler::outlook_for(const SessionState& st,
                                          TimeMs now) const {
  const auto& profile = *model(st.game).profile;
  SessionOutlook o;
  o.in_loading = st.monitor->in_loading();
  o.expected_remaining_ms =
      st.monitor->current_stage() >= 0 ? st.monitor->expected_remaining_ms(now)
                                       : 0;
  const int cur = st.monitor->current_stage();
  if (cur >= 0) {
    o.current_peak = profile.stage_type(cur).peak_demand;
  } else {
    // Monitor has not judged yet: assume the game's peak.
    o.current_peak = profile.peak_demand;
  }
  // Forward sequence: current stage (if execution) plus predictions.
  std::vector<int> seq;
  if (cur >= 0 && !profile.stage_type(cur).loading) seq.push_back(cur);
  if (model(st.game).predictor->trained()) {
    const auto pred = model(st.game).predictor->predict_sequence(
        st.monitor->exec_history(), st.player_id, st.script_idx,
        cfg_.distributor.horizon);
    seq.insert(seq.end(), pred.begin(), pred.end());
  }
  o.expected = expected_demand(profile, seq);
  return o;
}

CandidateOutlook CocgScheduler::candidate_outlook(
    const TrainedGame& tg, std::uint64_t player_id,
    std::size_t script_idx) const {
  CandidateOutlook c;
  const auto& profile = *tg.profile;
  // Opening stage: the initialization loading (cheap on GPU).
  c.opening = profile.loading_stage_type >= 0
                  ? profile.stage_type(profile.loading_stage_type).peak_demand
                  : profile.peak_demand;
  // Predicted run: peak and expected demand with redundancy (Eq. 1).
  std::vector<int> seq;
  if (tg.predictor->trained()) {
    seq = tg.predictor->predict_sequence({}, player_id, script_idx,
                                         cfg_.distributor.horizon);
  }
  c.peak = profile.peak_demand;
  for (int stt : seq) {
    if (stt >= 0 && stt < profile.num_stage_types()) {
      c.peak = ResourceVector::max(
          c.peak, profile.stage_type(stt).peak_demand);
    }
  }
  // Note: Eq. 1's redundancy S fattens *allocations*, not admission — the
  // distributor reasons about real expected consumption.
  c.expected = expected_demand(profile, seq);
  c.short_game = tg.spec->short_game;
  c.expected_duration_ms = tg.mean_run_duration_ms;
  return c;
}

std::optional<platform::Placement> CocgScheduler::admit(
    platform::PlatformView& view, const platform::GameRequest& req) {
  const TimeMs now = view.now();
  auto log_decision = [&](bool admitted, std::string reason,
                          ServerId server = ServerId{}, int gpu = -1) {
    (admitted ? obs_accepted_ : obs_rejected_).add();
    if (!obs::enabled()) return;
    obs::AdmissionEvent ev;
    ev.request = req.id.value;
    ev.game = req.spec->name;
    ev.admitted = admitted;
    ev.reason = std::move(reason);
    ev.server = server.value;
    ev.gpu = gpu;
    ev.waited_ms = now - req.arrival;
    obs::events().record(now, std::move(ev));
  };

  auto mit = models_.find(req.spec->name);
  if (mit == models_.end()) {  // untrained game
    log_decision(false, "no trained model");
    return std::nullopt;
  }
  const TrainedGame& tg = mit->second;
  CandidateOutlook cand;
  {
    obs::StageScope predictor_scope(prof_predictor_);
    cand = candidate_outlook(tg, req.player_id, req.script_idx);
  }

  // Best-fit complementary placement: among all views the distributor
  // admits, pick the one whose resulting expected utilization is lowest —
  // spreading expected load evens out peak-collision odds across views.
  struct Choice {
    ServerId server;
    int gpu = 0;
    double score = 0.0;  // resulting max-dim expected utilization
    std::string reason;  // distributor verdict for the winning view
  };
  std::optional<Choice> best;
  std::string last_reject;

  {
    obs::StageScope distributor_scope(prof_distributor_);
    for (ServerId server : view.server_ids()) {
      const auto& srv = view.server(server);
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        // Redundancy-fattened allocations may transiently oversubscribe a
        // view; new sessions cannot be placed there until it drains.
        if (!srv.allocated_on_gpu(g).fits_within(
                srv.spec().per_gpu_capacity())) {
          continue;
        }
        const ResourceVector cap = view_capacity(view, server, g);
        std::vector<SessionOutlook> hosted;
        for (SessionId sid : srv.sessions_on_gpu(g)) {
          auto it = state_.find(sid);
          if (it == state_.end()) continue;
          hosted.push_back(outlook_for(it->second, now));
        }
        const AdmitDecision d = distributor_.decide(cap, hosted, cand);
        if (!d.admit) {
          last_reject = d.reason;
          continue;
        }

        ResourceVector expected_total = cand.expected;
        for (const auto& h : hosted) expected_total += h.expected;
        double score = 0.0;
        for (std::size_t dim = 0; dim < kNumDims; ++dim) {
          if (cap.at(dim) > 0.0) {
            score = std::max(score, expected_total.at(dim) / cap.at(dim));
          }
        }
        if (!best || score < best->score) {
          best = Choice{server, g, score, d.reason};
        }
      }
    }
  }
  if (!best) {
    log_decision(false, last_reject.empty() ? "no capacity view available"
                                            : last_reject);
    return std::nullopt;
  }
  log_decision(true, best->reason, best->server, best->gpu);

  const auto& srv = view.server(best->server);
  // Initial allocation: provision the opening loading stage and the first
  // predicted execution stage plus redundancy (§IV-B: "once a game is
  // detected as loading, reassign resources to accommodate its next
  // execution stage"), clamped to the hardware actually free. The control
  // loop re-provisions within 5 s.
  ResourceVector alloc = cand.opening;
  if (tg.predictor->trained()) {
    const int first =
        tg.predictor->predict_next({}, req.player_id, req.script_idx);
    if (first >= 0 && first < tg.profile->num_stage_types()) {
      alloc = ResourceVector::max(
          alloc, tg.profile->stage_type(first).peak_demand +
                     tg.predictor->redundancy());
    }
  }
  alloc = ResourceVector::min(alloc, srv.free_on_gpu(best->gpu));
  platform::Placement placement;
  placement.server = best->server;
  placement.gpu_index = best->gpu;
  placement.allocation = alloc;
  return placement;
}

void CocgScheduler::on_session_start(platform::PlatformView& view,
                                     SessionId sid) {
  const auto info = view.session_info(sid);
  const TrainedGame& tg = model(info.spec->name);
  SessionState st;
  st.monitor = std::make_unique<OnlineMonitor>(
      tg.profile.get(), tg.predictor.get(), info.player_id, info.script_idx,
      cfg_.monitor);
  st.monitor->set_session_id(sid.value);
  st.game = info.spec->name;
  st.player_id = info.player_id;
  st.script_idx = info.script_idx;
  state_.emplace(sid, std::move(st));
}

void CocgScheduler::on_session_end(platform::PlatformView& view,
                                   SessionId sid) {
  (void)view;
  state_.erase(sid);
}

void CocgScheduler::update_monitor(platform::PlatformView& view,
                                   SessionId sid, SessionState& st,
                                   bool view_saturated) {
  const auto& trace = view.session_trace(sid);
  const auto& samples = trace.samples();
  if (samples.size() <= st.samples_consumed) return;

  // Aggregate the newest detection window into one 5-second observation.
  const std::size_t first =
      samples.size() > cfg_.detection_window
          ? samples.size() - cfg_.detection_window
          : 0;
  const std::size_t begin = std::max(first, st.samples_consumed);
  ResourceVector mean;
  std::size_t n = 0;
  for (std::size_t i = begin; i < samples.size(); ++i) {
    mean += samples[i].usage;
    ++n;
  }
  COCG_CHECK(n > 0);
  mean *= 1.0 / static_cast<double>(n);
  st.samples_consumed = samples.size();

  const bool was_loading = st.monitor->in_loading();
  const int hits_before = st.monitor->prediction_hits();
  const MonitorEvent ev =
      st.monitor->observe(view.now(), mean, view_saturated);
  // Feed fresh prediction outcomes back into Eq. 1's P (online refinement).
  const int total_now =
      st.monitor->prediction_hits() + st.monitor->prediction_misses();
  if (total_now > st.outcomes_reported) {
    const bool hit = st.monitor->prediction_hits() > hits_before;
    models_.at(st.game).predictor->record_outcome(hit);
    st.outcomes_reported = total_now;
  }
  if (was_loading &&
      (ev == MonitorEvent::kEnteredExecution ||
       ev == MonitorEvent::kRehearsalCallback)) {
    // Loading finished (or was withdrawn): the steal budget resets and any
    // hold must be released.
    st.stolen_ms = 0;
    if (st.held) {
      view.hold_loading(sid, false);
      st.held = false;
    }
  }
}

void CocgScheduler::control(platform::PlatformView& view) {
  // Step 1-3 of Fig. 8: collect, judge, predict — per session. A view is
  // saturated when the allocations pinned to it oversubscribe it; judged
  // stages on such views must not drift downward (squeezed supply mimics
  // a calmer stage).
  {
    obs::StageScope predictor_scope(prof_predictor_);
    for (SessionId sid : view.session_ids()) {
      auto it = state_.find(sid);
      if (it == state_.end()) continue;
      const auto info = view.session_info(sid);
      const auto& srv = view.server(info.server);
      const bool saturated =
          !srv.allocated_on_gpu(info.gpu_index)
               .fits_within(srv.spec().per_gpu_capacity());
      update_monitor(view, sid, it->second, saturated);
    }
  }

  // Replacing-model fallback (§IV-B2): rotate a game's model when any of
  // its sessions accumulates persistent errors.
  std::map<std::string, bool> replace;
  for (auto& [sid, st] : state_) {
    if (st.monitor->consecutive_errors() >= cfg_.replace_model_after) {
      replace[st.game] = true;
    }
  }
  for (const auto& [game, _] : replace) {
    auto& tg = models_.at(game);
    if (!tg.predictor->can_retrain()) {
      // Bundle restored without its training corpus (§IV-B2 fallback
      // unavailable): keep the current model and clear the streaks so the
      // request does not repeat every control tick.
      COCG_INFO("CoCG cannot replace model for "
                << game << " (no training corpus in bundle), keeping "
                << ml::model_kind_name(tg.predictor->model_kind()));
      for (auto& [sid, st] : state_) {
        if (st.game == game) st.monitor->reset_error_streak();
      }
      continue;
    }
    // Schedule point: fire the replacement now (1) or skip this control
    // tick (0). Skipping still clears the streaks, so a forced skip delays
    // the migration by at least another full error streak.
    if (schedcheck::decide(schedcheck::Point::kMigrationTrigger, 2, 1) == 0) {
      for (auto& [sid, st] : state_) {
        if (st.game == game) st.monitor->reset_error_streak();
      }
      continue;
    }
    tg.predictor->replace_model(rng_);
    ++model_replacements_;
    obs_replacements_.add();
    COCG_INFO("CoCG replaced model for " << game << " -> "
                                         << ml::model_kind_name(
                                                tg.predictor->model_kind()));
    for (auto& [sid, st] : state_) {
      if (st.game == game) st.monitor->reset_error_streak();
    }
  }

  // Step 4 of Fig. 8 + regulator: per GPU view, apply recommended
  // allocations, stealing loading time when the view is over the limit.
  obs::StageScope regulator_scope(prof_regulator_);
  for (ServerId server : view.server_ids()) {
    const auto& srv = view.server(server);
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      std::vector<SessionPressure> pressures;
      std::vector<SessionId> sids;
      for (SessionId sid : srv.sessions_on_gpu(g)) {
        auto it = state_.find(sid);
        if (it == state_.end()) continue;
        auto& st = it->second;
        SessionPressure p;
        p.sid = sid;
        p.in_loading = st.monitor->in_loading();
        p.wanted = st.monitor->recommended_allocation();
        // Saturation probe: allocations cap what the monitor can observe,
        // so a starved session masquerades as a low-demand stage. The
        // tell-tale is usage *pinned* at the cap: an unconstrained session
        // fluctuates below its allocation about half the time, a starved
        // one draws ≥98% of the cap in every sample. Grow pinned
        // dimensions so the monitor can see the true demand.
        {
          const auto& samples = view.session_trace(sid).samples();
          if (samples.size() >= cfg_.detection_window) {
            const ResourceVector cur_alloc =
                srv.placement(sid).allocation;
            const std::size_t first = samples.size() - cfg_.detection_window;
            const ResourceVector ceiling =
                model(st.game).profile->peak_demand +
                model(st.game).predictor->redundancy();
            for (std::size_t dim = 0; dim < kNumDims; ++dim) {
              if (cur_alloc.at(dim) <= 0.0) continue;
              bool pinned = true;
              for (std::size_t i = first; i < samples.size(); ++i) {
                if (samples[i].usage.at(dim) <
                    0.98 * cur_alloc.at(dim)) {
                  pinned = false;
                  break;
                }
              }
              if (pinned) {
                p.wanted.at(dim) = std::max(
                    p.wanted.at(dim),
                    std::min(cur_alloc.at(dim) * 1.3, ceiling.at(dim)));
              }
            }
          }
        }
        const auto& profile = *model(st.game).profile;
        p.loading_demand =
            profile.loading_stage_type >= 0
                ? profile.stage_type(profile.loading_stage_type).peak_demand
                : p.wanted;
        p.stolen_ms = st.stolen_ms;
        pressures.push_back(p);
        sids.push_back(sid);
      }
      if (pressures.empty()) continue;
      const ResourceVector cap = view_capacity(view, server, g);
      const auto actions = regulator_.resolve(cap, pressures);
      for (std::size_t i = 0; i < actions.size(); ++i) {
        auto& st = state_.at(sids[i]);
        const auto& act = actions[i];
        const bool was_held = st.held;
        view.hold_loading(act.sid, act.hold);
        view.reallocate(act.sid, act.allocation,
                        /*allow_oversubscribe=*/true);
        if (act.hold) {
          st.stolen_ms += static_cast<DurationMs>(cfg_.detection_window) *
                          1000;  // one detection period stolen
          st.held = true;
          obs_holds_.add();
        } else {
          st.held = false;
        }
        // Log holds and releases; the steady no-hold state is not an
        // intervention.
        if (obs::enabled() && (act.hold || was_held)) {
          obs::events().record(
              view.now(),
              obs::RegulatorIntervention{sids[i].value, st.game, act.hold,
                                         st.stolen_ms});
        }
      }
    }
  }
}

int CocgScheduler::total_callbacks() const {
  int total = 0;
  for (const auto& [sid, st] : state_) total += st.monitor->callbacks();
  return total;
}

}  // namespace cocg::core
