// Baseline schedulers from §V-A / Fig. 11.
//
//  * VbpScheduler — Vector Bin Packing: reserves 90% of a game's peak for
//    its whole lifetime; admits only when the reservation fits in the
//    remaining capacity. Never reallocates.
//  * GaugurScheduler — GAugur-style [HPDC'19]: offline pairwise profiling
//    decides whether two games may share a server, then each admitted game
//    gets a FIXED resource limit. The paper's GAugur learns the limit with
//    ML over profiling runs; we compute the equivalent profiling statistic
//    directly (execution-demand mean + configurable share of the
//    peak-to-mean gap), which preserves its observable behaviour: static
//    limits that squeeze peak stages (low FPS ratio, Fig. 13) and
//    peak-sum admission that refuses heavy pairs (Fig. 11).
//  * ImprovedScheduler — the paper's second comparison scheme: stage-aware
//    but purely reactive. Tracks observed usage and reallocates to the
//    recent observation plus headroom; no prediction, so every stage rise
//    is served late.
#pragma once

#include <map>
#include <string>

#include "core/offline.h"
#include "platform/scheduler.h"

namespace cocg::core {

struct VbpConfig {
  double reserve_fraction = 0.90;  ///< of peak demand
};

class VbpScheduler final : public platform::Scheduler {
 public:
  VbpScheduler(std::map<std::string, TrainedGame> models, VbpConfig cfg = {});

  std::string name() const override { return "VBP"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override;

 private:
  std::map<std::string, TrainedGame> models_;
  VbpConfig cfg_;
};

struct GaugurConfig {
  /// Fixed limit = mean execution demand + gap_share × (peak − mean).
  /// 0.7 reproduces GAugur's published behaviour: heavy pairs (DOTA2+DMC,
  /// CSGO+Genshin) exceed one GPU and are refused; light pairs co-locate
  /// but peak stages overrun the fixed limit and drop frames (Fig. 13).
  double gap_share = 0.7;
  double capacity_limit = 1.0;
};

class GaugurScheduler final : public platform::Scheduler {
 public:
  GaugurScheduler(std::map<std::string, TrainedGame> models,
                  GaugurConfig cfg = {});

  std::string name() const override { return "GAugur"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override;

  /// The fixed per-game limit GAugur assigns (exposed for tests).
  ResourceVector fixed_limit(const std::string& game) const;

 private:
  std::map<std::string, TrainedGame> models_;
  GaugurConfig cfg_;
};

struct ImprovedConfig {
  double headroom = 1.15;          ///< margin over observed usage
  std::size_t window = 5;          ///< samples averaged per reaction
  double capacity_limit = 0.95;
};

class ImprovedScheduler final : public platform::Scheduler {
 public:
  ImprovedScheduler(std::map<std::string, TrainedGame> models,
                    ImprovedConfig cfg = {});

  std::string name() const override { return "Improved"; }
  std::optional<platform::Placement> admit(
      platform::PlatformView& view, const platform::GameRequest& req) override;
  void control(platform::PlatformView& view) override;

 private:
  std::map<std::string, TrainedGame> models_;
  ImprovedConfig cfg_;
};

}  // namespace cocg::core
