#include "core/regulator.h"

#include "common/check.h"
#include "schedcheck/session.h"

namespace cocg::core {

std::vector<RegulatorAction> Regulator::resolve(
    const ResourceVector& capacity,
    const std::vector<SessionPressure>& sessions) const {
  const ResourceVector limit = capacity * cfg_.capacity_limit;

  std::vector<RegulatorAction> actions;
  actions.reserve(sessions.size());
  ResourceVector total;
  for (const auto& s : sessions) {
    actions.push_back(RegulatorAction{s.sid, false, s.wanted});
    total += s.wanted;
  }
  if (total.fits_within(limit) && !schedcheck::active()) {
    return actions;  // no pressure: release all
  }

  // Steal from loading sessions until the view fits. The natural order is
  // input order (deterministic: ascending sid); under schedcheck the
  // victim pick and each hold are schedule points, so replay can reorder
  // victims or hold sessions the natural run would have released —
  // "delayed regulator holds" in the fuzzer's mutation menu.
  std::vector<std::size_t> eligible;
  eligible.reserve(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& s = sessions[i];
    if (!s.in_loading) continue;
    if (s.stolen_ms >= cfg_.max_steal_ms) continue;  // budget exhausted
    eligible.push_back(i);
  }
  bool over = !total.fits_within(limit);
  while (!eligible.empty()) {
    std::size_t pick = 0;
    if (eligible.size() > 1) {
      pick = static_cast<std::size_t>(schedcheck::decide(
          schedcheck::Point::kRegulatorVictim,
          static_cast<int>(eligible.size()), 0));
    }
    const std::size_t i = eligible[pick];
    eligible.erase(eligible.begin() + static_cast<std::ptrdiff_t>(pick));
    const int hold =
        schedcheck::decide(schedcheck::Point::kRegulatorHold, 2, over ? 1 : 0);
    if (hold == 0) {
      if (!over) break;  // natural run: fits again, release the rest
      continue;          // forced release: move to the next victim
    }
    const ResourceVector throttled =
        sessions[i].loading_demand * cfg_.held_loading_frac;
    total -= actions[i].allocation;
    total += throttled;
    actions[i].hold = true;
    actions[i].allocation = throttled;
    over = !total.fits_within(limit);
    if (!over && !schedcheck::active()) return actions;
  }
  // Still over: nothing more the regulator may legally steal; contention
  // resolution will squeeze proportionally (§IV-D's bounded degradation).
  return actions;
}

}  // namespace cocg::core
