#include "core/regulator.h"

#include "common/check.h"

namespace cocg::core {

std::vector<RegulatorAction> Regulator::resolve(
    const ResourceVector& capacity,
    const std::vector<SessionPressure>& sessions) const {
  const ResourceVector limit = capacity * cfg_.capacity_limit;

  std::vector<RegulatorAction> actions;
  actions.reserve(sessions.size());
  ResourceVector total;
  for (const auto& s : sessions) {
    actions.push_back(RegulatorAction{s.sid, false, s.wanted});
    total += s.wanted;
  }
  if (total.fits_within(limit)) return actions;  // no pressure: release all

  // Steal from loading sessions, in order, until the view fits.
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& s = sessions[i];
    if (!s.in_loading) continue;
    if (s.stolen_ms >= cfg_.max_steal_ms) continue;  // budget exhausted
    const ResourceVector throttled =
        s.loading_demand * cfg_.held_loading_frac;
    total -= actions[i].allocation;
    total += throttled;
    actions[i].hold = true;
    actions[i].allocation = throttled;
    if (total.fits_within(limit)) return actions;
  }
  // Still over: nothing more the regulator may legally steal; contention
  // resolution will squeeze proportionally (§IV-D's bounded degradation).
  return actions;
}

}  // namespace cocg::core
