// Feature encoding for the stage predictor (§IV-B).
//
// Input: the history of *execution* stage types a run has visited so far
// (loading stages are the prediction trigger, not part of the history),
// the run's position, and the player identity (hashed to two stable floats
// so tree models can isolate player cohorts — the mobile/MOBA quadrants'
// "user influence").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace cocg::core {

struct EncoderConfig {
  int history_len = 3;          ///< how many trailing stages to encode
  bool player_features = true;  ///< include hashed player identity
  /// Include the launched game mode (Table I script) — the platform's
  /// launcher knows which mode/level a player started.
  bool mode_feature = true;
};

class FeatureEncoder {
 public:
  /// `num_types`: stage-type catalog size; the padding id for "no history"
  /// is num_types itself.
  FeatureEncoder(EncoderConfig cfg, int num_types);

  std::vector<std::string> feature_names() const;

  /// Encode the tail of `exec_history` (may be shorter than history_len)
  /// plus position = number of execution stages completed so far.
  ml::FeatureRow encode(const std::vector<int>& exec_history,
                        std::uint64_t player_id, std::size_t mode) const;

  int num_types() const { return num_types_; }
  const EncoderConfig& config() const { return cfg_; }

 private:
  EncoderConfig cfg_;
  int num_types_;
};

/// Stable 2-float hash of a player id in [0, 1).
void player_hash_floats(std::uint64_t player_id, double& h0, double& h1);

}  // namespace cocg::core
