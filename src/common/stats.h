// Small statistics toolkit used by the profiler, QoS accounting and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace cocg {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  // Inline: fed once per rendering tick on the simulation hot path.
  void add(double x) {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = x < min_ ? x : min_;
      max_ = x > max_ ? x : max_;
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  void merge(const RunningStats& o);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n<2.
  double stddev() const;
  double min() const;  ///< Requires !empty().
  double max() const;  ///< Requires !empty().
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Mean of a vector (0 for empty).
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation (0 for n < 2).
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
/// Does not mutate its argument.
double percentile(std::vector<double> xs, double p);

/// Sum of squared deviations from the mean (SSE of a 1-cluster fit).
double sse_about_mean(const std::vector<double>& xs);

/// Exponential moving average helper.
class Ema {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ema(double alpha);

  double update(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cocg
