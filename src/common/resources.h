// Multi-dimensional resource vectors — the currency of CoCG.
//
// The paper tracks CPU utilization, GPU utilization, GPU memory and system
// RAM per 5-second frame slice (§IV-A, Fig. 2). ResourceVector carries those
// four dimensions; all profiler clustering, predictor features and scheduler
// capacity checks operate on it.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace cocg {

/// Index of each dimension inside a ResourceVector.
enum class Dim : std::size_t {
  kCpuPct = 0,   ///< CPU utilization, percent of the whole server (0..100).
  kGpuPct = 1,   ///< GPU utilization, percent of one GPU device (0..100).
  kGpuMemMb = 2, ///< GPU memory, MB.
  kRamMb = 3,    ///< System RAM, MB.
};

inline constexpr std::size_t kNumDims = 4;

inline constexpr std::array<const char*, kNumDims> kDimNames = {
    "cpu_pct", "gpu_pct", "gpu_mem_mb", "ram_mb"};

/// A point in resource space. Plain value type; all ops are element-wise.
struct ResourceVector {
  std::array<double, kNumDims> v{};

  constexpr ResourceVector() = default;
  constexpr ResourceVector(double cpu, double gpu, double gpu_mem, double ram)
      : v{cpu, gpu, gpu_mem, ram} {}

  constexpr double cpu() const { return v[0]; }
  constexpr double gpu() const { return v[1]; }
  constexpr double gpu_mem() const { return v[2]; }
  constexpr double ram() const { return v[3]; }

  constexpr double& operator[](Dim d) { return v[static_cast<std::size_t>(d)]; }
  constexpr double operator[](Dim d) const {
    return v[static_cast<std::size_t>(d)];
  }
  constexpr double& at(std::size_t i) { return v[i]; }
  constexpr double at(std::size_t i) const { return v[i]; }

  // The element-wise kernels are defined inline: they run per session per
  // simulated tick (contention resolution, demand/supply accounting) where
  // a call per 4-double loop is measurable overhead.

  ResourceVector& operator+=(const ResourceVector& o) {
    for (std::size_t i = 0; i < kNumDims; ++i) v[i] += o.v[i];
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    for (std::size_t i = 0; i < kNumDims; ++i) v[i] -= o.v[i];
    return *this;
  }
  ResourceVector& operator*=(double s) {
    for (std::size_t i = 0; i < kNumDims; ++i) v[i] *= s;
    return *this;
  }

  /// True iff every dimension of *this is <= the matching dimension of cap.
  bool fits_within(const ResourceVector& cap) const {
    for (std::size_t i = 0; i < kNumDims; ++i) {
      if (v[i] > cap.v[i]) return false;
    }
    return true;
  }

  /// True iff every dimension is exactly zero.
  bool is_zero() const {
    for (std::size_t i = 0; i < kNumDims; ++i) {
      if (v[i] != 0.0) return false;
    }
    return true;
  }

  /// True iff every dimension is >= 0.
  bool non_negative() const {
    for (std::size_t i = 0; i < kNumDims; ++i) {
      if (!(v[i] >= 0.0)) return false;
    }
    return true;
  }

  /// Element-wise max / min.
  static ResourceVector max(const ResourceVector& a, const ResourceVector& b) {
    ResourceVector r;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      r.v[i] = a.v[i] < b.v[i] ? b.v[i] : a.v[i];
    }
    return r;
  }
  static ResourceVector min(const ResourceVector& a, const ResourceVector& b) {
    ResourceVector r;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      r.v[i] = b.v[i] < a.v[i] ? b.v[i] : a.v[i];
    }
    return r;
  }

  /// Element-wise clamp of every dimension to [0, hi-dim].
  ResourceVector clamped_to(const ResourceVector& hi) const;

  /// Euclidean distance in normalized space (each dim divided by scale-dim).
  /// Used by the profiler's K-means so that MB dims don't dominate % dims.
  double distance(const ResourceVector& o, const ResourceVector& scale) const;

  /// Squared Euclidean distance with the same normalization.
  double distance_sq(const ResourceVector& o,
                     const ResourceVector& scale) const;

  /// The tightest bottleneck ratio available/demand over dims with demand>0;
  /// >= 1 means fully satisfied. Used by the FPS degradation model.
  double satisfaction_ratio(const ResourceVector& supplied) const {
    double ratio = 1.0;
    bool any_demand = false;
    for (std::size_t i = 0; i < kNumDims; ++i) {
      if (v[i] <= 0.0) continue;
      any_demand = true;
      const double r = supplied.v[i] / v[i];
      ratio = r < ratio ? r : ratio;
    }
    if (!any_demand) return 1.0;
    return ratio > 0.0 ? ratio : 0.0;
  }

  std::string str() const;
};

ResourceVector operator+(ResourceVector a, const ResourceVector& b);
ResourceVector operator-(ResourceVector a, const ResourceVector& b);
ResourceVector operator*(ResourceVector a, double s);
ResourceVector operator*(double s, ResourceVector a);
bool operator==(const ResourceVector& a, const ResourceVector& b);
std::ostream& operator<<(std::ostream& os, const ResourceVector& r);

/// Default normalization scale: 100% CPU, 100% GPU, 8 GB VRAM, 8 GB RAM.
/// (Matches the paper's testbed: GTX-2080-class 8 GB GPU and 8 GB RAM.)
ResourceVector default_norm_scale();

}  // namespace cocg
