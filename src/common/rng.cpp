#include "common/rng.h"

#include <cmath>

namespace cocg {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro state must not be all-zero; splitmix64 never emits four zeros
  // from distinct states, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COCG_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Lemire-style rejection-free-enough bounded draw (debiased by rejection).
  const std::uint64_t threshold = (~span + 1) % span;  // (2^64 - span) % span
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::exponential(double mean) {
  COCG_EXPECTS(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  COCG_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    COCG_EXPECTS_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  COCG_EXPECTS_MSG(total > 0.0, "at least one weight must be positive");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace cocg
