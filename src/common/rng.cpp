#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace cocg {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro state must not be all-zero; splitmix64 never emits four zeros
  // from distinct states, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits → double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  COCG_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COCG_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Lemire-style rejection-free-enough bounded draw (debiased by rejection).
  const std::uint64_t threshold = (~span + 1) % span;  // (2^64 - span) % span
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r < threshold);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double ang = 2.0 * std::numbers::pi * u2;
  cached_normal_ = mag * std::sin(ang);
  have_cached_normal_ = true;
  return mag * std::cos(ang);
}

double Rng::normal(double mean, double stddev) {
  COCG_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  COCG_EXPECTS(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  COCG_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    COCG_EXPECTS_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  COCG_EXPECTS_MSG(total > 0.0, "at least one weight must be positive");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace cocg
