// Minimal leveled logger. Thread-safe sink; off by default in tests/benches.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.h"

namespace cocg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (used by the COCG_LOG macro; callable directly too).
void log_message(LogLevel level, const std::string& msg);

const char* log_level_name(LogLevel level);

/// Install a clock whose reading prefixes every line as `[t=12.345s]` —
/// wire the simulation clock in so log lines correlate with trace/event
/// timestamps instead of wall time. Pass nullptr to remove the prefix.
void set_log_clock(std::function<TimeMs()> clock);

}  // namespace cocg

#define COCG_LOG(level, expr)                                     \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::cocg::log_level())) {                  \
      std::ostringstream cocg_log_os_;                            \
      cocg_log_os_ << expr;                                       \
      ::cocg::log_message(level, cocg_log_os_.str());             \
    }                                                             \
  } while (false)

#define COCG_DEBUG(expr) COCG_LOG(::cocg::LogLevel::kDebug, expr)
#define COCG_INFO(expr) COCG_LOG(::cocg::LogLevel::kInfo, expr)
#define COCG_WARN(expr) COCG_LOG(::cocg::LogLevel::kWarn, expr)
#define COCG_ERROR(expr) COCG_LOG(::cocg::LogLevel::kError, expr)
