// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (user influence, measurement
// noise, arrival processes, ML subsampling) draws from an explicitly seeded
// Rng so that experiments are bit-reproducible. We implement xoshiro256**
// seeded via splitmix64 — the standard recommendation of its authors — and
// expose the distributions the simulator needs without pulling in <random>'s
// implementation-defined (hence non-portable) distribution outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cocg {

/// splitmix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'c0c6'2024ULL);

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly shuffle [first, last) like std::shuffle.
  template <class It>
  void shuffle(It first, It last) {
    const auto n = last - first;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = static_cast<decltype(i)>(uniform_int(0, i));
      using std::swap;
      swap(first[i], first[j]);
    }
  }

  /// Derive an independent child generator (stable given call order).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cocg
