// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (user influence, measurement
// noise, arrival processes, ML subsampling) draws from an explicitly seeded
// Rng so that experiments are bit-reproducible. We implement xoshiro256**
// seeded via splitmix64 — the standard recommendation of its authors — and
// expose the distributions the simulator needs without pulling in <random>'s
// implementation-defined (hence non-portable) distribution outputs.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/check.h"

namespace cocg {

/// splitmix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'c0c6'2024ULL);

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  // The draw primitives below are defined inline: they run per session per
  // simulated tick, where the call overhead of an out-of-line definition is
  // measurable against the few instructions of work.

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 top bits → double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    COCG_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double ang = 2.0 * std::numbers::pi * u2;
    cached_normal_ = mag * std::sin(ang);
    have_cached_normal_ = true;
    return mag * std::cos(ang);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) {
    COCG_EXPECTS(stddev >= 0.0);
    return mean + stddev * normal();
  }

  /// Fill out[0..n) with normal(mean, stddev) draws. Produces exactly the
  /// sequence n successive normal(mean, stddev) calls would — Box–Muller
  /// pair caching included — so batched hot paths stay bit-identical with
  /// their scalar predecessors while saving per-call overhead.
  void fill_normal(double* out, std::size_t n, double mean, double stddev) {
    COCG_EXPECTS(stddev >= 0.0);
    std::size_t i = 0;
    if (n > 0 && have_cached_normal_) {
      have_cached_normal_ = false;
      out[i++] = mean + stddev * cached_normal_;
    }
    // Whole Box–Muller pairs, no cache traffic.
    for (; i + 1 < n; i += 2) {
      double u1 = uniform();
      while (u1 <= 0.0) u1 = uniform();
      const double u2 = uniform();
      const double mag = std::sqrt(-2.0 * std::log(u1));
      const double ang = 2.0 * std::numbers::pi * u2;
      out[i] = mean + stddev * (mag * std::cos(ang));
      out[i + 1] = mean + stddev * (mag * std::sin(ang));
    }
    if (i < n) out[i] = mean + stddev * normal();
  }

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly shuffle [first, last) like std::shuffle.
  template <class It>
  void shuffle(It first, It last) {
    const auto n = last - first;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = static_cast<decltype(i)>(uniform_int(0, i));
      using std::swap;
      swap(first[i], first[j]);
    }
  }

  /// Derive an independent child generator (stable given call order).
  Rng fork();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cocg
