#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cocg {

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
  const double total = n + m;
  m2_ = m2_ + o.m2_ + delta * delta * n * m / total;
  mean_ = (n * mean_ + m * o.mean_) / total;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  COCG_EXPECTS(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  COCG_EXPECTS(n_ > 0);
  return max_;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  COCG_EXPECTS(!xs.empty());
  COCG_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double sse_about_mean(const std::vector<double>& xs) {
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc;
}

Ema::Ema(double alpha) : alpha_(alpha) {
  COCG_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

double Ema::update(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  COCG_EXPECTS(hi > lo);
  COCG_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  COCG_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace cocg
