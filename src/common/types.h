// Fundamental identifier and time types shared by all CoCG modules.
#pragma once

#include <cstdint>
#include <limits>

namespace cocg {

/// Simulated time in milliseconds since simulation start.
using TimeMs = std::int64_t;

/// Duration in milliseconds.
using DurationMs = std::int64_t;

inline constexpr TimeMs kTimeNever = std::numeric_limits<TimeMs>::max();

/// One second / one telemetry frame slice (the paper samples at 5 s).
inline constexpr DurationMs kMsPerSec = 1000;
inline constexpr DurationMs kFrameSliceMs = 5 * kMsPerSec;

constexpr double ms_to_sec(DurationMs ms) {
  return static_cast<double>(ms) / 1000.0;
}
constexpr DurationMs sec_to_ms(double sec) {
  return static_cast<DurationMs>(sec * 1000.0);
}

/// Strongly-typed id helper: distinct tag types prevent mixing id spaces.
template <class Tag>
struct Id {
  std::uint64_t value = kInvalid;

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

struct SessionTag {};
struct ServerTag {};
struct GameTag {};
struct RequestTag {};

using SessionId = Id<SessionTag>;
using ServerId = Id<ServerTag>;
using GameId = Id<GameTag>;
using RequestId = Id<RequestTag>;

}  // namespace cocg

// std::hash specializations so ids can key unordered containers.
#include <functional>
namespace std {
template <class Tag>
struct hash<cocg::Id<Tag>> {
  size_t operator()(cocg::Id<Tag> id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};
}  // namespace std
