// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Violations throw cocg::ContractError so tests can assert
// on them; they are never compiled out because the simulator is not on a
// nanosecond-critical path.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cocg {

/// Thrown when a COCG_EXPECTS / COCG_ENSURES / COCG_CHECK condition fails.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace detail
}  // namespace cocg

#define COCG_CHECK_IMPL(kind, cond, msg)                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::cocg::detail::contract_fail(kind, #cond, __FILE__, __LINE__,     \
                                    (msg));                              \
    }                                                                    \
  } while (false)

/// Precondition check (argument validation at API boundaries).
#define COCG_EXPECTS(cond) COCG_CHECK_IMPL("Precondition", cond, "")
#define COCG_EXPECTS_MSG(cond, msg) COCG_CHECK_IMPL("Precondition", cond, msg)

/// Postcondition check.
#define COCG_ENSURES(cond) COCG_CHECK_IMPL("Postcondition", cond, "")

/// General internal-invariant check.
#define COCG_CHECK(cond) COCG_CHECK_IMPL("Check", cond, "")
#define COCG_CHECK_MSG(cond, msg) COCG_CHECK_IMPL("Check", cond, msg)
