// Console table / CSV emission for benchmark harnesses.
//
// Every bench binary prints the rows/series the corresponding paper table or
// figure reports; TablePrinter renders aligned ASCII tables, CsvWriter dumps
// the same data machine-readably next to the binary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cocg {

/// Column-aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Add one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double x, int precision = 2);
  static std::string fmt_pct(double x, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (quotes cells containing separators/quotes).
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);

 private:
  struct Impl;
  Impl* impl_;
};

/// Escape a single CSV cell (exposed for testing).
std::string csv_escape(const std::string& cell);

}  // namespace cocg
