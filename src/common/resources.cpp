#include "common/resources.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace cocg {

ResourceVector& ResourceVector::operator+=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumDims; ++i) v[i] += o.v[i];
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& o) {
  for (std::size_t i = 0; i < kNumDims; ++i) v[i] -= o.v[i];
  return *this;
}

ResourceVector& ResourceVector::operator*=(double s) {
  for (std::size_t i = 0; i < kNumDims; ++i) v[i] *= s;
  return *this;
}

bool ResourceVector::fits_within(const ResourceVector& cap) const {
  for (std::size_t i = 0; i < kNumDims; ++i) {
    if (v[i] > cap.v[i]) return false;
  }
  return true;
}

bool ResourceVector::non_negative() const {
  return std::all_of(v.begin(), v.end(), [](double x) { return x >= 0.0; });
}

ResourceVector ResourceVector::max(const ResourceVector& a,
                                   const ResourceVector& b) {
  ResourceVector r;
  for (std::size_t i = 0; i < kNumDims; ++i) r.v[i] = std::max(a.v[i], b.v[i]);
  return r;
}

ResourceVector ResourceVector::min(const ResourceVector& a,
                                   const ResourceVector& b) {
  ResourceVector r;
  for (std::size_t i = 0; i < kNumDims; ++i) r.v[i] = std::min(a.v[i], b.v[i]);
  return r;
}

ResourceVector ResourceVector::clamped_to(const ResourceVector& hi) const {
  ResourceVector r;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    r.v[i] = std::clamp(v[i], 0.0, hi.v[i]);
  }
  return r;
}

double ResourceVector::distance_sq(const ResourceVector& o,
                                   const ResourceVector& scale) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    COCG_EXPECTS_MSG(scale.v[i] > 0.0, "normalization scale must be positive");
    const double d = (v[i] - o.v[i]) / scale.v[i];
    acc += d * d;
  }
  return acc;
}

double ResourceVector::distance(const ResourceVector& o,
                                const ResourceVector& scale) const {
  return std::sqrt(distance_sq(o, scale));
}

double ResourceVector::satisfaction_ratio(
    const ResourceVector& supplied) const {
  double ratio = 1.0;
  bool any_demand = false;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    if (v[i] <= 0.0) continue;
    any_demand = true;
    ratio = std::min(ratio, supplied.v[i] / v[i]);
  }
  if (!any_demand) return 1.0;
  return std::max(ratio, 0.0);
}

std::string ResourceVector::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
  a += b;
  return a;
}
ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
  a -= b;
  return a;
}
ResourceVector operator*(ResourceVector a, double s) {
  a *= s;
  return a;
}
ResourceVector operator*(double s, ResourceVector a) {
  a *= s;
  return a;
}

bool operator==(const ResourceVector& a, const ResourceVector& b) {
  return a.v == b.v;
}

std::ostream& operator<<(std::ostream& os, const ResourceVector& r) {
  os << "{cpu=" << r.cpu() << "% gpu=" << r.gpu() << "% vram=" << r.gpu_mem()
     << "MB ram=" << r.ram() << "MB}";
  return os;
}

ResourceVector default_norm_scale() {
  return ResourceVector{100.0, 100.0, 8192.0, 8192.0};
}

}  // namespace cocg
