#include "common/resources.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace cocg {

ResourceVector ResourceVector::clamped_to(const ResourceVector& hi) const {
  ResourceVector r;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    r.v[i] = std::clamp(v[i], 0.0, hi.v[i]);
  }
  return r;
}

double ResourceVector::distance_sq(const ResourceVector& o,
                                   const ResourceVector& scale) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < kNumDims; ++i) {
    COCG_EXPECTS_MSG(scale.v[i] > 0.0, "normalization scale must be positive");
    const double d = (v[i] - o.v[i]) / scale.v[i];
    acc += d * d;
  }
  return acc;
}

double ResourceVector::distance(const ResourceVector& o,
                                const ResourceVector& scale) const {
  return std::sqrt(distance_sq(o, scale));
}

std::string ResourceVector::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
  a += b;
  return a;
}
ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
  a -= b;
  return a;
}
ResourceVector operator*(ResourceVector a, double s) {
  a *= s;
  return a;
}
ResourceVector operator*(double s, ResourceVector a) {
  a *= s;
  return a;
}

bool operator==(const ResourceVector& a, const ResourceVector& b) {
  return a.v == b.v;
}

std::ostream& operator<<(std::ostream& os, const ResourceVector& r) {
  os << "{cpu=" << r.cpu() << "% gpu=" << r.gpu() << "% vram=" << r.gpu_mem()
     << "MB ram=" << r.ram() << "MB}";
  return os;
}

ResourceVector default_norm_scale() {
  return ResourceVector{100.0, 100.0, 8192.0, 8192.0};
}

}  // namespace cocg
