#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace cocg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << '[' << log_level_name(level) << "] " << msg << '\n';
}

}  // namespace cocg
