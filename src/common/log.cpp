#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace cocg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
// Guarded by g_sink_mutex: std::function reads race with rebinding.
std::function<TimeMs()> g_clock;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_clock(std::function<TimeMs()> clock) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_clock = std::move(clock);
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << '[' << log_level_name(level) << "] ";
  if (g_clock) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[t=%.3fs] ",
                  static_cast<double>(g_clock()) / 1000.0);
    std::cerr << buf;
  }
  std::cerr << msg << '\n';
}

}  // namespace cocg
