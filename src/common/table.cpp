#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace cocg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  COCG_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  COCG_EXPECTS_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string TablePrinter::fmt_pct(double x, int precision) {
  return fmt(x, precision) + "%";
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_sep = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

struct CsvWriter::Impl {
  std::ofstream out;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    delete impl_;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) impl_->out << ',';
    impl_->out << csv_escape(cells[i]);
  }
  impl_->out << '\n';
}

}  // namespace cocg
