// Helpers for the line-oriented artifact formats (profiles, compiled
// models, predictor bundles). LineReader tracks the 1-based line number of
// the stream it consumes so every parse error can name the offending line
// and field — required for debugging hand-edited or corrupted artifacts.
// All failures throw std::runtime_error (not ContractError: malformed
// input is an environment problem, not a programming bug).
#pragma once

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace cocg {

class LineReader {
 public:
  /// `what` names the artifact being parsed, e.g. "model" or "bundle";
  /// it prefixes every diagnostic.
  LineReader(std::istream& is, std::string what)
      : is_(is), what_(std::move(what)) {}

  /// Next line verbatim; throws if the stream ends, naming `key` as the
  /// thing we were looking for.
  std::string line(const std::string& key) {
    std::string l;
    ++line_no_;
    if (!std::getline(is_, l)) {
      fail("truncated before '" + key + "'");
    }
    return l;
  }

  /// Next line must start with `key`; returns a stream over the remainder.
  std::istringstream expect(const std::string& key) {
    std::string l = line(key);
    if (l.rfind(key, 0) != 0) {
      fail("expected '" + key + "', got '" + l + "'");
    }
    return std::istringstream(l.substr(key.size()));
  }

  /// Extract one `>>`-formatted value; throws naming the field.
  template <typename T>
  T field(std::istringstream& ls, const std::string& field_name) {
    T v{};
    if (!(ls >> v)) fail("bad or missing field '" + field_name + "'");
    return v;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(what_ + " line " + std::to_string(line_no_) +
                             ": " + msg);
  }

  int line_no() const { return line_no_; }

 private:
  std::istream& is_;
  std::string what_;
  int line_no_ = 0;
};

/// Scoped stream precision: doubles round-trip exactly through text when
/// printed with max_digits10 significant digits (the `>>` parse of such a
/// string is correctly rounded back to the original bits).
class FullPrecision {
 public:
  explicit FullPrecision(std::ostream& os)
      : os_(os),
        old_(os.precision(std::numeric_limits<double>::max_digits10)) {}
  ~FullPrecision() { os_.precision(old_); }
  FullPrecision(const FullPrecision&) = delete;
  FullPrecision& operator=(const FullPrecision&) = delete;

 private:
  std::ostream& os_;
  std::streamsize old_;
};

}  // namespace cocg
