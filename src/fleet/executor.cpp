#include "fleet/executor.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/check.h"
#include "fleet/runner.h"

namespace cocg::fleet {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* runner_kind_name(RunnerKind kind) {
  switch (kind) {
    case RunnerKind::kLockstep: return "lockstep";
    case RunnerKind::kSteal: return "steal";
  }
  return "?";
}

bool parse_runner_kind(const std::string& name, RunnerKind& out) {
  if (name == "lockstep") out = RunnerKind::kLockstep;
  else if (name == "steal") out = RunnerKind::kSteal;
  else return false;
  return true;
}

ShardExecutor::ShardExecutor(int threads, int shards) : threads_(threads) {
  COCG_EXPECTS(threads >= 1);
  COCG_EXPECTS(shards >= 1);
  queues_.resize(static_cast<std::size_t>(shards));
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardExecutor::submit(int shard, std::function<void()> job) {
  COCG_EXPECTS(shard >= 0 && shard < shards());
  COCG_EXPECTS(job != nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    queues_[static_cast<std::size_t>(shard)].jobs.emplace_back(
        submitted_++, std::move(job));
  }
  work_cv_.notify_one();
}

int ShardExecutor::pick_shard_locked(int worker) const {
  // Laggard-first within each tier: among runnable shards (idle with a
  // non-empty queue) prefer the worker's own home shards, then steal the
  // deepest queue overall. Ties resolve to the lowest shard id — stable,
  // though by the thread-confinement argument the choice never affects
  // results, only the schedule.
  int best_home = -1, best_any = -1;
  std::size_t depth_home = 0, depth_any = 0;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    const ShardQueue& q = queues_[s];
    if (q.busy || q.jobs.empty()) continue;
    const std::size_t depth = q.jobs.size();
    if (static_cast<int>(s % static_cast<std::size_t>(threads_)) == worker &&
        depth > depth_home) {
      depth_home = depth;
      best_home = static_cast<int>(s);
    }
    if (depth > depth_any) {
      depth_any = depth;
      best_any = static_cast<int>(s);
    }
  }
  return best_home >= 0 ? best_home : best_any;
}

void ShardExecutor::worker_loop(int worker) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const int shard = pick_shard_locked(worker);
    if (shard < 0) {
      if (shutdown_) return;
      ++idle_waits_;
      const std::uint64_t wait_start = wall_ns();
      work_cv_.wait(lk, [&] {
        return shutdown_ || pick_shard_locked(worker) >= 0;
      });
      idle_ns_ += wall_ns() - wait_start;
      continue;
    }
    ShardQueue& q = queues_[static_cast<std::size_t>(shard)];
    const std::size_t idx = q.jobs.front().first;
    std::function<void()> job = std::move(q.jobs.front().second);
    q.jobs.pop_front();
    q.busy = true;
    const bool stolen =
        static_cast<int>(static_cast<std::size_t>(shard) %
                         static_cast<std::size_t>(threads_)) != worker;
    lk.unlock();

    const std::uint64_t job_start = stolen ? wall_ns() : 0;
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }

    lk.lock();
    q.busy = false;
    ++jobs_run_;
    if (stolen) {
      ++steals_;
      steal_ns_ += wall_ns() - job_start;
    }
    if (err && (error_ == nullptr || idx < first_error_idx_)) {
      error_ = err;
      first_error_idx_ = idx;
    }
    ++done_;
    // Freeing this shard (or having popped its queue) may make another
    // job runnable for some waiting worker; drain() also needs the nudge.
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
}

void ShardExecutor::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return done_ == submitted_; });
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    const std::size_t idx = first_error_idx_;
    error_ = nullptr;
    rethrow_job_error(err, idx);
  }
}

std::uint64_t ShardExecutor::jobs_run() const {
  std::lock_guard<std::mutex> lk(mu_);
  return jobs_run_;
}

std::uint64_t ShardExecutor::steals() const {
  std::lock_guard<std::mutex> lk(mu_);
  return steals_;
}

std::uint64_t ShardExecutor::steal_ns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return steal_ns_;
}

std::uint64_t ShardExecutor::idle_waits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return idle_waits_;
}

std::uint64_t ShardExecutor::idle_ns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return idle_ns_;
}

ShardExecutor::Counters ShardExecutor::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return Counters{jobs_run_, steals_, steal_ns_, idle_waits_, idle_ns_};
}

}  // namespace cocg::fleet
