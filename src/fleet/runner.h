// EpochPool — a small persistent thread pool with barrier semantics.
//
// The fleet advances its shards in lockstep epochs: every epoch it hands
// the pool one job per shard, and run() returns only when every job has
// finished (the barrier). Jobs must be mutually independent — each shard
// job installs its own obs domain and touches only that shard's state, so
// the hot loop needs no locks; shards communicate solely through the
// immutable load snapshots the fleet takes between run() calls.
//
// With threads == 1 the jobs execute inline on the caller's thread in
// order, which is also the degenerate (and bitwise-reference) execution
// of the determinism contract: results must not depend on thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cocg::fleet {

/// Rethrow a captured job error with the failing job's index prefixed to
/// the message: "epoch job <idx>: <what>". Non-std::exception payloads
/// become "epoch job <idx>: unknown exception". Shared by EpochPool and
/// ShardExecutor so both runners report failures identically.
[[noreturn]] void rethrow_job_error(const std::exception_ptr& err,
                                    std::size_t job_index);

class EpochPool {
 public:
  /// `threads` >= 1. One worker thread per slot beyond the first; the
  /// caller claims jobs too during run(), so K shards on K threads run
  /// fully parallel and threads == 1 spawns no threads at all.
  explicit EpochPool(int threads);
  ~EpochPool();

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  int threads() const { return threads_; }

  /// Execute every job, return when all are done. Rethrows the first job
  /// exception (by job index) on the calling thread after the barrier.
  void run(const std::vector<std::function<void()>>& jobs);

 private:
  void worker_loop();
  bool claim_and_run();  ///< returns false when the epoch's jobs ran out

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a new epoch
  std::condition_variable done_cv_;   ///< caller waits for the barrier
  const std::vector<std::function<void()>>* jobs_ = nullptr;
  std::uint64_t epoch_ = 0;           ///< bumped per run() to wake workers
  std::size_t next_job_ = 0;
  std::size_t done_jobs_ = 0;
  std::size_t first_error_idx_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;
};

}  // namespace cocg::fleet
