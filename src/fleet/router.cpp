#include "fleet/router.h"

#include <algorithm>

#include "common/check.h"

namespace cocg::fleet {

const char* router_policy_name(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "round_robin";
    case RouterPolicy::kLeastLoaded: return "least_loaded";
    case RouterPolicy::kPowerOfTwo: return "power_of_two";
    case RouterPolicy::kRegionAffinity: return "region_affinity";
  }
  return "?";
}

std::optional<RouterPolicy> parse_router_policy(const std::string& name) {
  if (name == "round_robin" || name == "rr") {
    return RouterPolicy::kRoundRobin;
  }
  if (name == "least_loaded" || name == "ll") {
    return RouterPolicy::kLeastLoaded;
  }
  if (name == "power_of_two" || name == "p2c") {
    return RouterPolicy::kPowerOfTwo;
  }
  if (name == "region_affinity" || name == "region" || name == "ra") {
    return RouterPolicy::kRegionAffinity;
  }
  return std::nullopt;
}

namespace {

/// Outstanding work per GPU view — the least-loaded ordering key.
double occupancy(const ShardLoad& l) {
  return static_cast<double>(l.running + l.queued) /
         static_cast<double>(std::max<std::size_t>(1, l.gpu_views));
}

}  // namespace

Router::Router(RouterPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

int Router::pick_least_loaded(const std::vector<ShardLoad>& loads) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    const double d = occupancy(loads[i]) - occupancy(loads[best]);
    if (d < 0.0 ||
        (d == 0.0 &&
         loads[i].mean_utilization < loads[best].mean_utilization)) {
      best = i;
    }
  }
  return static_cast<int>(best);
}

int Router::pick(const std::vector<ShardLoad>& loads, std::uint32_t region) {
  const auto n = static_cast<std::int64_t>(loads.size());
  switch (policy_) {
    case RouterPolicy::kRoundRobin:
      return static_cast<int>(next_rr_++ % loads.size());
    case RouterPolicy::kLeastLoaded:
      return pick_least_loaded(loads);
    case RouterPolicy::kRegionAffinity: {
      // Arrivals without a stated region have no home — balance them.
      if (region == 0) return pick_least_loaded(loads);
      const std::size_t home =
          static_cast<std::size_t>(region) % loads.size();
      std::size_t cheapest = 0;
      for (std::size_t i = 1; i < loads.size(); ++i) {
        if (loads[i].forward_cost < loads[cheapest].forward_cost) {
          cheapest = i;
        }
      }
      // Stay home unless home is a full per-view unit of forward cost
      // worse than the cheapest shard — affinity beats perfect balance,
      // but not a hot-spotted cluster.
      if (loads[home].forward_cost >
          loads[cheapest].forward_cost + 1.0) {
        return static_cast<int>(cheapest);
      }
      return static_cast<int>(home);
    }
    case RouterPolicy::kPowerOfTwo: {
      const auto a = static_cast<std::size_t>(rng_.uniform_int(0, n - 1));
      auto b = static_cast<std::size_t>(rng_.uniform_int(0, n - 1));
      if (loads.size() > 1 && b == a) b = (b + 1) % loads.size();
      const std::size_t lo = std::min(a, b);
      const std::size_t hi = std::max(a, b);
      return static_cast<int>(loads[hi].forward_cost < loads[lo].forward_cost
                                  ? hi
                                  : lo);
    }
  }
  return 0;
}

int Router::route(std::vector<ShardLoad>& loads) {
  return route(loads, 0);
}

int Router::route(std::vector<ShardLoad>& loads, std::uint32_t region) {
  COCG_EXPECTS(!loads.empty());
  const int chosen = pick(loads, region);
  account(loads, chosen);
  return chosen;
}

void Router::account(std::vector<ShardLoad>& loads, int chosen) const {
  COCG_EXPECTS(chosen >= 0 &&
               static_cast<std::size_t>(chosen) < loads.size());
  auto& l = loads[static_cast<std::size_t>(chosen)];
  ++l.queued;
  l.forward_cost +=
      1.0 / static_cast<double>(std::max<std::size_t>(1, l.gpu_views));
}

}  // namespace cocg::fleet
