// Global request router — splits one open-loop arrival stream across
// shards (§IV-C's distributor stays per-shard; this layer only picks
// *which* cluster sees a request).
//
// Policies operate on immutable per-shard load snapshots refreshed at
// every epoch barrier, never on live shard state, so routing decisions —
// and therefore the whole fleet — are independent of how many threads
// execute the shards:
//  * round_robin        — arrival counter modulo shard count;
//  * least_loaded       — fewest outstanding sessions+requests per GPU
//                         view, utilization snapshot as the tiebreak;
//  * power_of_two       — sample two shards, keep the one whose
//                         forward-combined-consumption estimate (the
//                         allocation mass the distributor admitted
//                         against, Eq. 1 redundancy included, plus queue
//                         pressure) is lower;
//  * region_affinity    — pin each traffic region to a home shard
//                         (region index modulo shard count) so regional
//                         players share clusters; spill to the cheapest
//                         shard when home is clearly overloaded.
//                         Region 0 ("global", arrivals that never stated
//                         a region) falls back to least-loaded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace cocg::fleet {

enum class RouterPolicy {
  kRoundRobin,
  kLeastLoaded,
  kPowerOfTwo,
  kRegionAffinity,
};

const char* router_policy_name(RouterPolicy policy);

/// Parse "round_robin"/"rr", "least_loaded"/"ll", "power_of_two"/"p2c",
/// "region_affinity"/"region"/"ra".
std::optional<RouterPolicy> parse_router_policy(const std::string& name);

/// Immutable load snapshot of one shard, taken at an epoch barrier.
struct ShardLoad {
  int shard = 0;
  std::size_t servers = 0;
  std::size_t gpu_views = 0;      ///< Σ servers × num_gpus
  std::size_t running = 0;        ///< active sessions
  std::size_t queued = 0;         ///< requests awaiting admission
  /// Mean over GPU views of the allocated binding-dimension fraction.
  double mean_utilization = 0.0;
  /// Forward combined-consumption estimate: the allocations the per-shard
  /// distributor committed to (stage peak + Eq. 1 redundancy) plus queue
  /// pressure, normalized per GPU view. The p2c cost function.
  double forward_cost = 0.0;
};

class Router {
 public:
  Router(RouterPolicy policy, std::uint64_t seed);

  /// Pick a shard for the next arrival. Mutates `loads` in place to
  /// account for the routed request (queued count + forward cost), so
  /// several arrivals inside one epoch spread instead of herding onto the
  /// snapshot's minimum.
  int route(std::vector<ShardLoad>& loads);
  /// Region-aware variant: identical to route(loads) for every policy
  /// except kRegionAffinity, which uses `region` (a traffic::RegionTable
  /// index) to pick the arrival's home shard.
  int route(std::vector<ShardLoad>& loads, std::uint32_t region);

  /// The in-place load accounting route() applies after picking. Public so
  /// a replay that *forces* the shard choice (schedcheck) can apply the
  /// same accounting without consuming router state or RNG draws.
  void account(std::vector<ShardLoad>& loads, int chosen) const;

  RouterPolicy policy() const { return policy_; }

 private:
  int pick(const std::vector<ShardLoad>& loads, std::uint32_t region);
  int pick_least_loaded(const std::vector<ShardLoad>& loads) const;

  RouterPolicy policy_;
  Rng rng_;
  std::uint64_t next_rr_ = 0;
};

}  // namespace cocg::fleet
