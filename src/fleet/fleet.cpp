#include "fleet/fleet.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "fleet/runner.h"
#include "obs/json.h"

namespace cocg::fleet {

namespace {

/// Stable per-role seed derivation: shard i uses salt i, the arrival
/// stream and router use reserved salts clear of any sane shard count.
std::uint64_t derived_seed(std::uint64_t fleet_seed, std::uint64_t salt) {
  SplitMix64 sm(fleet_seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  return sm.next();
}

constexpr std::uint64_t kArrivalSalt = 1u << 20;
constexpr std::uint64_t kRouterSalt = (1u << 20) + 1;

// Schedule-stream clocks (raw function pointers — binding a stream must
// not allocate). The coordinator stamps records with the epoch start; a
// shard stream stamps them with its platform's simulated now().
TimeMs coord_clock(const void* arg) {
  return *static_cast<const TimeMs*>(arg);
}
TimeMs shard_clock(const void* arg) {
  return static_cast<const platform::CloudPlatform*>(arg)->now();
}

}  // namespace

Fleet::Fleet(FleetConfig cfg, const SchedulerFactory& make_scheduler)
    : cfg_(cfg),
      router_(cfg.policy, derived_seed(cfg.seed, kRouterSalt)),
      prof_router_(coord_prof_, obs::Stage::kRouter),
      prof_barrier_(coord_prof_, obs::Stage::kShardBarrier) {
  COCG_EXPECTS(cfg_.shards >= 1);
  COCG_EXPECTS(cfg_.threads >= 1);
  COCG_EXPECTS(make_scheduler != nullptr);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) {
    Shard s;
    s.domain = std::make_unique<obs::Domain>();
    // Construct scheduler + platform under the shard's domain so every
    // pre-resolved obs handle points into the shard's own registry.
    obs::ScopedDomain sd(*s.domain);
    auto pcfg = cfg_.platform;
    pcfg.seed = derived_seed(cfg_.seed, static_cast<std::uint64_t>(i));
    s.platform = std::make_unique<platform::CloudPlatform>(
        pcfg, make_scheduler(i));
    shards_.push_back(std::move(s));
  }
  refresh_loads();
}

Fleet::~Fleet() = default;

int Fleet::add_server(const hw::ServerSpec& spec) {
  const int shard = static_cast<int>(next_server_shard_++ %
                                     static_cast<std::size_t>(cfg_.shards));
  add_server_to_shard(shard, spec);
  return shard;
}

void Fleet::add_server_to_shard(int shard, const hw::ServerSpec& spec) {
  COCG_EXPECTS(shard >= 0 && shard < num_shards());
  auto& s = shards_[static_cast<std::size_t>(shard)];
  {
    obs::ScopedDomain sd(*s.domain);  // add_server resolves util gauges
    s.platform->add_server(spec);
  }
  ++s.servers;
  refresh_loads();  // keep pre-run snapshots (loads()) consistent
}

traffic::PoissonSource& Fleet::poisson_source() {
  if (poisson_ == nullptr) {
    // Same salt the legacy in-fleet arrival RNG used, so existing seeded
    // experiments keep their exact arrival sequences.
    auto src = std::make_unique<traffic::PoissonSource>(
        derived_seed(cfg_.seed, kArrivalSalt));
    poisson_ = src.get();
    sources_.push_back(std::move(src));
  }
  return *poisson_;
}

void Fleet::add_global_source(const platform::OpenLoopSource& source) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.arrivals_per_hour > 0.0);
  COCG_EXPECTS(source.player_pool >= 1);
  poisson_source().add_stream(source, 0);
}

void Fleet::add_global_source(const platform::OpenLoopSource& source,
                              const std::string& region) {
  COCG_EXPECTS(source.spec != nullptr);
  COCG_EXPECTS(source.arrivals_per_hour > 0.0);
  COCG_EXPECTS(source.player_pool >= 1);
  poisson_source().add_stream(source, regions_.intern(region));
}

std::size_t Fleet::add_trace_arrivals(
    const traffic::Trace& trace,
    const std::vector<const game::GameSpec*>& specs,
    bool use_recorded_routing) {
  COCG_EXPECTS_MSG(!ran_, "add_trace_arrivals must precede run()");
  auto bound = std::make_unique<std::vector<traffic::Arrival>>(
      traffic::bind_trace(trace, specs, regions_));
  const std::size_t n = bound->size();
  sources_.push_back(std::make_unique<traffic::TraceReplaySource>(
      bound.get(), use_recorded_routing));
  bound_.push_back(std::move(bound));
  return n;
}

void Fleet::enable_capture(traffic::TraceRecorder* recorder) {
  recorder_ = recorder;
}

void Fleet::add_shard_source(int shard, const platform::SourceConfig& source) {
  COCG_EXPECTS(shard >= 0 && shard < num_shards());
  shards_[static_cast<std::size_t>(shard)].platform->add_source(source);
}

void Fleet::refresh_loads() {
  loads_.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& p = *shards_[i].platform;
    ShardLoad l;
    l.shard = static_cast<int>(i);
    l.servers = shards_[i].servers;
    l.running = p.running_sessions();
    l.queued = p.queued_requests();
    double util_sum = 0.0;
    std::size_t views = 0;
    for (std::size_t s = 0; s < p.num_servers(); ++s) {
      const auto& srv = p.server(ServerId{s});
      for (int g = 0; g < srv.spec().num_gpus; ++g) {
        util_sum += srv.utilization_on_gpu(g);
        ++views;
      }
    }
    l.gpu_views = views;
    l.mean_utilization =
        views > 0 ? util_sum / static_cast<double>(views) : 0.0;
    l.forward_cost =
        l.mean_utilization +
        static_cast<double>(l.queued) /
            static_cast<double>(std::max<std::size_t>(1, views));
    loads_[i] = l;
  }
}

void Fleet::drain_sources(TimeMs t0, TimeMs t1) {
  epoch_arrivals_.clear();
  for (auto& src : sources_) src->generate(t0, t1, epoch_arrivals_);
  // Sources emit stream-major; route the window in arrival-time order
  // (stable: ties keep registration order) so captured traces satisfy the
  // non-decreasing-timestamp invariant and replay consumes the stream in
  // exactly the order the recorder saw it.
  std::stable_sort(epoch_arrivals_.begin(), epoch_arrivals_.end(),
                   [](const traffic::Arrival& a, const traffic::Arrival& b) {
                     return a.at < b.at;
                   });
}

void Fleet::route_epoch(std::vector<std::vector<StagedRequest>>* staging) {
  for (const auto& a : epoch_arrivals_) {
    int shard = 0;
    if (a.shard >= 0 && a.shard < num_shards()) {
      // Captured router verdict — honor it and bypass the router so a
      // replay reproduces the recorded run exactly. (A verdict from a
      // larger fleet than ours is meaningless; those arrivals fall
      // through to fresh routing.)
      shard = a.shard;
    } else {
      obs::StageScope route_scope(prof_router_);
      // Schedule point: the natural choice runs the real router (RNG
      // draws, in-place load accounting); a forced choice skips the
      // router entirely and applies the accounting explicitly, so replay
      // neither consumes router state nor double-counts load.
      bool forced = false;
      shard = schedcheck::decide_lazy(
          schedcheck::Point::kRouterChoice, num_shards(),
          [&] { return router_.route(loads_, a.region); }, &forced);
      if (forced) router_.account(loads_, shard);
    }
    auto& s = shards_[static_cast<std::size_t>(shard)];
    platform::RequestMeta meta;
    meta.region = a.region;
    meta.profile = static_cast<std::uint8_t>(a.profile);
    meta.expected_session_ms = a.expected_session_ms;
    if (staging == nullptr) {
      s.platform->schedule_request(a.spec, a.script_idx, a.player_id, a.at,
                                   meta);
    } else {
      (*staging)[static_cast<std::size_t>(shard)].push_back(
          StagedRequest{a.spec, a.script_idx, a.player_id, a.at, meta});
    }
    ++s.routed;
    ++arrivals_;
    if (a.region >= region_routed_.size()) {
      region_routed_.resize(a.region + 1, 0);
    }
    ++region_routed_[a.region];
    if (recorder_ != nullptr) recorder_->record(a, regions_, shard);
  }
}

void Fleet::enable_health_stream(std::ostream* os, DurationMs period_ms) {
  COCG_EXPECTS(period_ms >= 0);
  health_os_ = os;
  health_period_ms_ = period_ms;
}

void Fleet::set_schedule_session(schedcheck::Session* session) {
  COCG_EXPECTS_MSG(!ran_, "set_schedule_session must precede run()");
  if (session != nullptr) {
    COCG_EXPECTS_MSG(session->num_streams() == num_shards() + 1,
                     "schedule session stream count != shards + 1");
  }
  sched_session_ = session;
}

void Fleet::set_barrier_hook(std::function<void(TimeMs)> hook) {
  COCG_EXPECTS_MSG(!ran_, "set_barrier_hook must precede run()");
  barrier_hook_ = std::move(hook);
}

void Fleet::write_health_snapshot_now(TimeMs t) {
  obs::HealthSnapshot snap;
  snap.t = t;
  snap.arrivals = arrivals_;
  const double dt_s = ms_to_sec(t - health_prev_t_);
  snap.router_decisions_per_s =
      dt_s > 0.0
          ? static_cast<double>(arrivals_ - health_prev_arrivals_) / dt_s
          : 0.0;
  snap.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& p = *shards_[i].platform;
    obs::HealthShard row;
    row.shard = static_cast<int>(i);
    row.servers = shards_[i].servers;
    row.running = p.running_sessions();
    row.queued = p.queued_requests();
    row.pending_events = p.pending_events();
    row.routed = shards_[i].routed;
    row.mean_gpu_util = loads_[i].mean_utilization;
    snap.shards.push_back(row);
  }
  snap.slo = merged_slo_attainment();
  snap.stage_costs = merged_stage_profile();
  if (live_exec_ != nullptr) {
    // Steal runner mid-run: snapshots are written at sync points, where
    // drain() just made the counters quiescent. One lock acquisition.
    const auto c = live_exec_->snapshot();
    snap.executor.present = true;
    snap.executor.jobs_run = c.jobs_run;
    snap.executor.steals = c.steals;
    snap.executor.steal_ns = c.steal_ns;
    snap.executor.idle_waits = c.idle_waits;
    snap.executor.idle_ns = c.idle_ns;
    snap.executor.syncs = exec_stats_.syncs;
  }
  if (cfg_.platform.incremental_resolve) {
    snap.quiescence.present = true;
    for (const auto& s : shards_) {
      const auto& q = s.platform->quiescence_stats();
      snap.quiescence.ticks_skipped += q.ticks_skipped;
      snap.quiescence.fast_forward_windows += q.fast_forward_windows;
      snap.quiescence.resolve_cache_hits += q.resolve_cache_hits;
      snap.quiescence.resolve_cache_misses += q.resolve_cache_misses;
    }
  }
  obs::write_health_snapshot(snap, *health_os_);
  health_prev_t_ = t;
  health_prev_arrivals_ = arrivals_;
}

void Fleet::run(DurationMs duration_ms) {
  COCG_EXPECTS(duration_ms > 0);
  COCG_EXPECTS_MSG(!ran_, "Fleet::run is one-shot");
  ran_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto& s = shards_[i];
    COCG_EXPECTS_MSG(s.platform->now() == 0, "fleet shards must start fresh");
    obs::ScopedDomain sd(*s.domain);
    // begin() can already admit closed-loop requests — keep those
    // admission decisions on the shard's stream.
    schedcheck::ScopedStream ss(sched_session_, static_cast<int>(i) + 1,
                                &shard_clock, s.platform.get());
    s.platform->begin(duration_ms);
  }
  refresh_loads();
  health_next_due_ = health_period_ms_;
  health_prev_t_ = 0;
  health_prev_arrivals_ = 0;

  if (cfg_.runner == RunnerKind::kSteal) {
    run_steal(duration_ms);
  } else {
    run_lockstep(duration_ms);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto& s = shards_[i];
    obs::ScopedDomain sd(*s.domain);
    schedcheck::ScopedStream ss(sched_session_, static_cast<int>(i) + 1,
                                &shard_clock, s.platform.get());
    s.platform->finish();
  }
}

void Fleet::run_lockstep(DurationMs duration_ms) {
  EpochPool pool(cfg_.threads);
  std::vector<std::function<void()>> jobs(shards_.size());
  const DurationMs epoch = cfg_.platform.control_period_ms;
  schedcheck::ScopedStream coord(sched_session_,
                                 schedcheck::Session::kCoordinatorStream,
                                 &coord_clock, &sched_now_);
  TimeMs t = 0;
  while (t < duration_ms) {
    const TimeMs t1 = std::min<TimeMs>(t + epoch, duration_ms);
    sched_now_ = t;
    // Routing first: every cross-shard input for this epoch is fixed
    // before any shard advances, so thread scheduling cannot influence
    // results.
    drain_sources(t, t1);
    route_epoch(nullptr);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = shards_[i];
      jobs[i] = [&s, t1, this, i] {
        obs::ScopedDomain sd(*s.domain);
        schedcheck::ScopedStream ss(sched_session_, static_cast<int>(i) + 1,
                                    &shard_clock, s.platform.get());
        s.platform->advance_until(t1);
      };
    }
    {
      obs::StageScope barrier_scope(prof_barrier_);
      pool.run(jobs);
    }
    t = t1;
    refresh_loads();  // barrier snapshot for the next epoch's routing
    if (barrier_hook_) barrier_hook_(t);
    if (health_os_ != nullptr && t >= health_next_due_) {
      write_health_snapshot_now(t);
      if (health_period_ms_ > 0) {
        while (health_next_due_ <= t) health_next_due_ += health_period_ms_;
      }
    }
  }
}

// The steal runner removes the structural barrier: shards sync only where
// a real data dependency exists. Round-robin routing and recorded-verdict
// replay never read the load snapshots, so the coordinator can route
// whole epochs ahead and keep every shard's queue full — a slow shard no
// longer stalls the rest. Load-based policies (ll/p2c/region) force a
// drain before any epoch that routes a fresh arrival, and a due health
// snapshot forces one too (snapshots are defined with all shards at the
// boundary); in the worst case the schedule degenerates to lockstep's.
// Arrival injection happens inside the shard's epoch job so engine state
// stays thread-confined and bitwise identical to lockstep (the job runs
// after the shard reached the window's start, exactly where the lockstep
// coordinator would have scheduled the same requests in the same order).
void Fleet::run_steal(DurationMs duration_ms) {
  ShardExecutor exec(cfg_.threads, num_shards());
  exec_stats_ = ExecutorStats{};
  live_exec_ = &exec;
  // The hook may throw (invariant violation aborts the run) — never leave
  // a dangling executor pointer behind.
  struct LiveExecReset {
    Fleet* fleet;
    ~LiveExecReset() { fleet->live_exec_ = nullptr; }
  } live_reset{this};
  staged_.assign(shards_.size(), {});
  const DurationMs epoch = cfg_.platform.control_period_ms;
  const bool loads_free = cfg_.policy == RouterPolicy::kRoundRobin;
  schedcheck::ScopedStream coord(sched_session_,
                                 schedcheck::Session::kCoordinatorStream,
                                 &coord_clock, &sched_now_);
  TimeMs t = 0;
  bool synced = true;  // loads_ reflect every shard at time t right now
  while (t < duration_ms) {
    const TimeMs t1 = std::min<TimeMs>(t + epoch, duration_ms);
    sched_now_ = t;
    drain_sources(t, t1);
    bool needs_loads = false;
    if (!loads_free) {
      for (const auto& a : epoch_arrivals_) {
        if (!(a.shard >= 0 && a.shard < num_shards())) {
          needs_loads = true;  // fresh routing under a load-based policy
          break;
        }
      }
    }
    const bool health_due =
        health_os_ != nullptr && t > 0 && t >= health_next_due_;
    // Schedule point: the run-ahead sync. Forcing 0 where the natural run
    // would drain routes this epoch on stale load snapshots (shard epoch
    // skew); forcing 1 inserts an extra rendezvous.
    const bool natural_sync = (needs_loads && !synced) || health_due;
    const bool sync = schedcheck::decide(schedcheck::Point::kExecutorSync, 2,
                                         natural_sync ? 1 : 0) != 0;
    if (sync) {
      ++exec_stats_.syncs;
      {
        obs::StageScope barrier_scope(prof_barrier_);
        exec.drain();  // every shard is now exactly at time t
      }
      refresh_loads();
      synced = true;
      if (barrier_hook_) barrier_hook_(t);
      if (health_due) {
        write_health_snapshot_now(t);
        if (health_period_ms_ > 0) {
          while (health_next_due_ <= t) health_next_due_ += health_period_ms_;
        }
      }
    }
    route_epoch(&staged_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = shards_[i];
      exec.submit(static_cast<int>(i),
                  [&s, t1, this, i, staged = std::move(staged_[i])] {
                    obs::ScopedDomain sd(*s.domain);
                    schedcheck::ScopedStream ss(sched_session_,
                                                static_cast<int>(i) + 1,
                                                &shard_clock,
                                                s.platform.get());
                    for (const auto& r : staged) {
                      s.platform->schedule_request(r.spec, r.script_idx,
                                                   r.player_id, r.at, r.meta);
                    }
                    s.platform->advance_until(t1);
                  });
      staged_[i].clear();
    }
    synced = false;
    t = t1;
  }
  {
    obs::StageScope barrier_scope(prof_barrier_);
    exec.drain();
  }
  refresh_loads();
  if (barrier_hook_) barrier_hook_(t);
  if (health_os_ != nullptr && t >= health_next_due_) {
    write_health_snapshot_now(t);
    if (health_period_ms_ > 0) {
      while (health_next_due_ <= t) health_next_due_ += health_period_ms_;
    }
  }
  exec_stats_.jobs_run = exec.jobs_run();
  exec_stats_.steals = exec.steals();
  exec_stats_.steal_ns = exec.steal_ns();
  exec_stats_.idle_waits = exec.idle_waits();
  exec_stats_.idle_ns = exec.idle_ns();
  // Steals are wall-class schedule points: thread confinement means the
  // victim choice cannot affect results, so they are counted, never
  // recorded or forced (docs/schedcheck.md).
  if (sched_session_ != nullptr) {
    sched_session_->note_wall_points(exec_stats_.steals);
  }
  // Executor schedule costs feed the coordinator profiler in wall-clock
  // mode only: deterministic-mode stage costs must stay a pure function
  // of the call sequence (thread-count invariant), which wall-clock
  // steal/idle times are not.
  if (obs::profiling_enabled() &&
      obs::profiler_clock_mode() == obs::ProfilerClockMode::kWall) {
    obs::StageProfile p{};
    auto& steal_row = p[static_cast<std::size_t>(obs::Stage::kExecutorSteal)];
    steal_row.calls = exec_stats_.steals;
    steal_row.total_ns = exec_stats_.steal_ns;
    auto& idle_row = p[static_cast<std::size_t>(obs::Stage::kExecutorIdle)];
    idle_row.calls = exec_stats_.idle_waits;
    idle_row.total_ns = exec_stats_.idle_ns;
    coord_prof_.merge_from(p);
  }
}

const platform::CloudPlatform& Fleet::shard(int i) const {
  COCG_EXPECTS(i >= 0 && i < num_shards());
  return *shards_[static_cast<std::size_t>(i)].platform;
}

obs::Domain& Fleet::shard_domain(int i) {
  COCG_EXPECTS(i >= 0 && i < num_shards());
  return *shards_[static_cast<std::size_t>(i)].domain;
}

std::size_t Fleet::routed_to(int i) const {
  COCG_EXPECTS(i >= 0 && i < num_shards());
  return shards_[static_cast<std::size_t>(i)].routed;
}

FleetReport Fleet::report() const {
  FleetReport r;
  r.arrivals = arrivals_;
  double wait_sum_s = 0.0;
  double fps_sum = 0.0;
  std::map<std::string, double> ratio_sum, wait_sum_game;
  // Region rows in RegionTable order (index 0 = "global"), so the layout
  // is deterministic and identical across capture and replay.
  r.regions.resize(regions_.size());
  std::vector<double> region_fps(regions_.size(), 0.0);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    r.regions[i].region = regions_.name(static_cast<std::uint32_t>(i));
    r.regions[i].routed =
        i < region_routed_.size() ? region_routed_[i] : 0;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& p = *shards_[i].platform;
    FleetReport::ShardRow row;
    row.shard = static_cast<int>(i);
    row.servers = shards_[i].servers;
    row.routed = shards_[i].routed;
    row.completed = p.completed_runs().size();
    row.throughput = p.throughput();
    row.queued_end = p.queued_requests();
    row.running_end = p.running_sessions();
    r.shards.push_back(row);

    r.throughput += row.throughput;
    r.completed += row.completed;
    for (const auto& run : p.completed_runs()) {
      auto& gs = r.per_game[run.game];
      ++gs.completed;
      gs.total_duration_s += ms_to_sec(run.duration_ms);
      gs.qos_violation_s += ms_to_sec(run.qos_violation_ms);
      ratio_sum[run.game] += run.mean_fps_ratio;
      wait_sum_game[run.game] += ms_to_sec(run.wait_ms);
      r.qos_violation_s += ms_to_sec(run.qos_violation_ms);
      wait_sum_s += ms_to_sec(run.wait_ms);
      fps_sum += run.mean_fps_ratio;
      if (run.region < r.regions.size()) {
        ++r.regions[run.region].completed;
        region_fps[run.region] += run.mean_fps_ratio;
      }
    }
  }
  for (std::size_t i = 0; i < r.regions.size(); ++i) {
    if (r.regions[i].completed > 0) {
      r.regions[i].mean_fps_ratio =
          region_fps[i] / static_cast<double>(r.regions[i].completed);
    }
  }
  for (auto& [name, gs] : r.per_game) {
    gs.mean_fps_ratio = ratio_sum[name] / std::max(1, gs.completed);
    gs.mean_wait_s = wait_sum_game[name] / std::max(1, gs.completed);
  }
  if (r.completed > 0) {
    r.mean_wait_s = wait_sum_s / static_cast<double>(r.completed);
    r.mean_fps_ratio = fps_sum / static_cast<double>(r.completed);
  }
  r.slo = merged_slo_attainment();
  r.stage_costs = merged_stage_profile();
  for (const auto& s : shards_) {
    const auto& q = s.platform->quiescence_stats();
    r.quiescence.ticks_skipped += q.ticks_skipped;
    r.quiescence.fast_forward_windows += q.fast_forward_windows;
    r.quiescence.resolve_cache_hits += q.resolve_cache_hits;
    r.quiescence.resolve_cache_misses += q.resolve_cache_misses;
  }
  return r;
}

obs::StageProfile Fleet::merged_stage_profile() const {
  obs::StageProfiler merged;
  merged.merge_from(coord_prof_);
  for (const auto& s : shards_) merged.merge_from(s.domain->profiler);
  return merged.profile();
}

std::vector<obs::SloAttainment> Fleet::merged_slo_attainment() const {
  obs::SloTracker merged;
  merged.configure(shards_.front().platform->slo_tracker().class_configs());
  for (const auto& s : shards_) merged.merge_from(s.platform->slo_tracker());
  return merged.attainment();
}

void Fleet::merge_metrics(obs::MetricsRegistry& out) const {
  for (const auto& s : shards_) out.merge_from(s.domain->metrics);
  if (obs::profiling_enabled()) {
    obs::StageProfiler merged;
    merged.merge_from(coord_prof_);
    for (const auto& s : shards_) merged.merge_from(s.domain->profiler);
    merged.export_counters(out);
  }
}

void Fleet::write_merged_events_jsonl(std::ostream& os) const {
  struct Line {
    TimeMs t = 0;
    std::string json;
  };
  std::vector<Line> all;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& log = shards_[i].domain->events;
    for (const auto& e : log.events()) {
      // Splice a leading "shard" field into the flat JSONL object.
      all.push_back(Line{e.t, "{\"shard\":" + std::to_string(i) + "," +
                                  obs::event_to_json(e).substr(1)});
    }
  }
  // Stable: input is shard-major and per-shard time-ordered, so equal
  // timestamps keep shard order — deterministic for any thread count.
  std::stable_sort(all.begin(), all.end(),
                   [](const Line& a, const Line& b) { return a.t < b.t; });
  for (const auto& l : all) os << l.json << '\n';
}

std::string Fleet::merged_events_jsonl() const {
  std::ostringstream os;
  write_merged_events_jsonl(os);
  return os.str();
}

void Fleet::write_merged_trace(std::ostream& os) const {
  obs::TraceBuilder merged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    merged.append(shards_[i].domain->trace,
                  static_cast<int>(i) * kShardPidStride,
                  "shard" + std::to_string(i) + "/");
  }
  merged.write_json(os);
}

void write_report_json(const FleetReport& rep, std::ostream& os) {
  // Fixed key order and obs::json_number round-trip formatting: equal
  // reports → equal bytes, the property the determinism tests assert.
  os << "{\"throughput\":" << obs::json_number(rep.throughput)
     << ",\"completed\":" << rep.completed << ",\"arrivals\":" << rep.arrivals
     << ",\"qos_violation_s\":" << obs::json_number(rep.qos_violation_s)
     << ",\"mean_wait_s\":" << obs::json_number(rep.mean_wait_s)
     << ",\"mean_fps_ratio\":" << obs::json_number(rep.mean_fps_ratio)
     << ",\"per_game\":{";
  bool first = true;
  for (const auto& [name, gs] : rep.per_game) {
    if (!first) os << ',';
    first = false;
    os << '"' << obs::json_escape(name)
       << "\":{\"completed\":" << gs.completed << ",\"total_duration_s\":"
       << obs::json_number(gs.total_duration_s) << ",\"mean_fps_ratio\":"
       << obs::json_number(gs.mean_fps_ratio) << ",\"qos_violation_s\":"
       << obs::json_number(gs.qos_violation_s) << ",\"mean_wait_s\":"
       << obs::json_number(gs.mean_wait_s) << '}';
  }
  os << "},\"shards\":[";
  for (std::size_t i = 0; i < rep.shards.size(); ++i) {
    const auto& row = rep.shards[i];
    if (i != 0) os << ',';
    os << "{\"shard\":" << row.shard << ",\"servers\":" << row.servers
       << ",\"routed\":" << row.routed << ",\"completed\":" << row.completed
       << ",\"throughput\":" << obs::json_number(row.throughput)
       << ",\"queued_end\":" << row.queued_end
       << ",\"running_end\":" << row.running_end << '}';
  }
  os << "],\"regions\":[";
  for (std::size_t i = 0; i < rep.regions.size(); ++i) {
    const auto& row = rep.regions[i];
    if (i != 0) os << ',';
    os << "{\"region\":\"" << obs::json_escape(row.region)
       << "\",\"routed\":" << row.routed
       << ",\"completed\":" << row.completed << ",\"mean_fps_ratio\":"
       << obs::json_number(row.mean_fps_ratio) << '}';
  }
  os << "],\"slo\":";
  obs::SloTracker::write_attainment_json(rep.slo, os);
  os << ",\"stage_costs\":";
  obs::write_stage_costs_json(rep.stage_costs, os);
  os << "}\n";
}

std::string report_json(const FleetReport& rep) {
  std::ostringstream os;
  write_report_json(rep, os);
  return os.str();
}

void write_report_json(const FleetReport& rep, std::ostream& os,
                       const Fleet::ExecutorStats& exec) {
  // Base encoding minus the closing brace, then the executor object.
  std::ostringstream base;
  write_report_json(rep, base);
  std::string body = base.str();
  COCG_CHECK(body.size() >= 2 && body.compare(body.size() - 2, 2, "}\n") == 0);
  body.resize(body.size() - 2);
  os << body << ",\"executor\":{\"jobs_run\":" << exec.jobs_run
     << ",\"steals\":" << exec.steals << ",\"steal_ns\":" << exec.steal_ns
     << ",\"idle_waits\":" << exec.idle_waits
     << ",\"idle_ns\":" << exec.idle_ns << ",\"syncs\":" << exec.syncs
     << "},\"quiescence\":{\"ticks_skipped\":"
     << rep.quiescence.ticks_skipped << ",\"fast_forward_windows\":"
     << rep.quiescence.fast_forward_windows << ",\"resolve_cache_hits\":"
     << rep.quiescence.resolve_cache_hits << ",\"resolve_cache_misses\":"
     << rep.quiescence.resolve_cache_misses << "}}\n";
}

}  // namespace cocg::fleet
