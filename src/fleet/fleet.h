// Fleet — sharded multi-cluster simulation on top of CloudPlatform.
//
// A Fleet partitions N servers into K shards. Each shard is a complete,
// independent single-cluster simulation — its own sim::Engine,
// CloudPlatform, Scheduler instance and obs::Domain, seeded by a
// splitmix64 expansion of the fleet seed — so the paper's per-cluster
// semantics (§IV-C distributor/regulator, 5-second control loop) are
// untouched.
//
// Global arrival streams replace per-shard sources: the fleet drains its
// traffic::ArrivalSources once per epoch (the legacy Poisson stream, a
// replayed trace, or both), orders the epoch's arrivals by time, and a
// Router assigns each to a shard using only the load snapshots taken at
// the previous epoch barrier. Shards then advance one control period in
// parallel (EpochPool; lock-free hot loop, shards share no mutable
// state), meet at the barrier, publish fresh snapshots, and repeat.
// Because every cross-shard input is fixed before an epoch starts,
// aggregate results are bit-identical for any thread count (tests/fleet
// enforces this).
//
// Capture/replay: enable_capture() records every routed arrival plus the
// router's verdict into a traffic::TraceRecorder; add_trace_arrivals()
// feeds a Trace back in. A replay that keeps the recorded verdicts
// reproduces the captured run's report byte-for-byte at any thread count
// (tests/traffic enforces this); clearing them (`use_recorded_routing =
// false`) re-routes the identical arrival stream under a different
// policy — the apples-to-apples comparison mode.
//
// Aggregation merges per-shard CompletedRuns, Eq. 2 throughput, QoS
// stats, metrics registries (MetricsRegistry::merge_from), event logs
// (time-ordered JSONL with a `shard` field) and Perfetto traces (each
// shard a process group; see docs/fleet.md).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "fleet/executor.h"
#include "fleet/router.h"
#include "obs/domain.h"
#include "obs/health.h"
#include "platform/cloud_platform.h"
#include "schedcheck/session.h"
#include "traffic/source.h"
#include "traffic/trace.h"

namespace cocg::fleet {

struct FleetConfig {
  int shards = 1;
  int threads = 1;  ///< runner parallelism; never changes results, only speed
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  /// Execution model: kLockstep advances all shards one epoch per barrier
  /// (the bitwise reference); kSteal gives each shard a private epoch-job
  /// queue (ShardExecutor) and lets the coordinator route ahead whenever
  /// the routing policy has no load-snapshot dependency on the epoch —
  /// reports are byte-identical either way (tests/fleet enforces it).
  RunnerKind runner = RunnerKind::kLockstep;
  std::uint64_t seed = 42;
  /// Per-shard platform template. `platform.seed` is ignored — each shard
  /// derives its own seed from `seed` — and `platform.control_period_ms`
  /// doubles as the fleet epoch length.
  platform::PlatformConfig platform;
};

/// Builds shard `i`'s scheduler. Called once per shard at construction,
/// under the shard's obs domain. The train-once pattern trains the suite
/// a single time, snapshots it into a core::ModelBank, and has each
/// factory call instantiate from the bank — every shard then shares the
/// same immutable compiled models instead of retraining K times (see
/// tools/cocg_fleet.cpp and docs/models.md).
using SchedulerFactory =
    std::function<std::unique_ptr<platform::Scheduler>(int shard)>;

/// Fleet-level results merged across shards.
struct FleetReport {
  double throughput = 0.0;  ///< Σ shards' Eq. 2 throughput (game-seconds)
  std::size_t completed = 0;
  std::size_t arrivals = 0;  ///< global open-loop arrivals generated
  double qos_violation_s = 0.0;
  double mean_wait_s = 0.0;       ///< over completed runs
  double mean_fps_ratio = 0.0;    ///< over completed runs
  std::map<std::string, platform::GameStats> per_game;

  struct ShardRow {
    int shard = 0;
    std::size_t servers = 0;
    std::size_t routed = 0;  ///< arrivals the router sent here
    std::size_t completed = 0;
    double throughput = 0.0;
    std::size_t queued_end = 0;
    std::size_t running_end = 0;
  };
  std::vector<ShardRow> shards;

  /// Per-region traffic accounting (row order = RegionTable order, so
  /// index 0 is always "global"). `routed` counts router decisions;
  /// `completed`/`mean_fps_ratio` come from the finished runs that
  /// carried the region through RequestMeta.
  struct RegionRow {
    std::string region;
    std::size_t routed = 0;
    std::size_t completed = 0;
    double mean_fps_ratio = 0.0;
  };
  std::vector<RegionRow> regions;

  /// Per-class SLO attainment over all shards' completed runs (always
  /// populated — the tracker records independently of the obs switch).
  std::vector<obs::SloAttainment> slo;
  /// Merged stage-profiler table (coordinator + shards); all zeros unless
  /// obs::set_profiling_enabled(true) during the run.
  obs::StageProfile stage_costs{};
  /// Quiescence-engine totals summed over shards (resolve cache +
  /// macro-tick fast-forward; zeros when incremental resolve is off).
  /// Deliberately NOT part of the 2-argument canonical encoding: the
  /// counters legitimately differ between the quiescent engine and its
  /// always-resolve oracle, whose *reports* must stay byte-identical.
  /// The extended (3-argument) writer and health heartbeats carry them.
  platform::QuiescenceStats quiescence{};
};

/// Canonical JSON encoding of a FleetReport: fixed key order, doubles at
/// max_digits10 — two reports serialize to the same bytes iff they are
/// equal. The determinism tests compare the train-once ModelBank path
/// against retrain-per-shard, and thread counts against each other, as
/// strings of this encoding.
void write_report_json(const FleetReport& rep, std::ostream& os);
std::string report_json(const FleetReport& rep);

/// Pid stride between shards in the merged Perfetto trace: shard i's
/// server pids render as i*stride + original pid.
inline constexpr int kShardPidStride = 100000;

class Fleet {
 public:
  Fleet(FleetConfig cfg, const SchedulerFactory& make_scheduler);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const FleetConfig& config() const { return cfg_; }

  /// Add a server to the fleet; servers are partitioned round-robin
  /// across shards. Returns the shard it landed on.
  int add_server(const hw::ServerSpec& spec);
  /// Targeted placement (heterogeneous / skewed fleets).
  void add_server_to_shard(int shard, const hw::ServerSpec& spec);

  /// Register a global open-loop Poisson source; arrivals are routed
  /// across shards by the configured policy. The two-argument form tags
  /// every arrival with a region (interned into regions()).
  void add_global_source(const platform::OpenLoopSource& source);
  void add_global_source(const platform::OpenLoopSource& source,
                         const std::string& region);

  /// Feed a trace's arrivals into the run (replay). Games are bound
  /// against `specs` by name (traffic::BindError on mismatch); region
  /// names are interned into regions(). With `use_recorded_routing` the
  /// captured router verdicts are honored and the router is bypassed for
  /// those arrivals; without it the configured policy re-routes the
  /// stream. Returns the number of arrivals added. Call before run().
  std::size_t add_trace_arrivals(const traffic::Trace& trace,
                                 const std::vector<const game::GameSpec*>& specs,
                                 bool use_recorded_routing);

  /// Capture every routed arrival (plus the router verdict) into
  /// `recorder`, which must outlive run(). Pass nullptr to disable.
  void enable_capture(traffic::TraceRecorder* recorder);

  /// Region name table shared by sources, capture and the report.
  const traffic::RegionTable& regions() const { return regions_; }

  /// Attach a closed-loop source to one shard (background load skew for
  /// stress experiments; bypasses the router by design).
  void add_shard_source(int shard, const platform::SourceConfig& source);

  /// Stream health snapshots (obs/health.h JSONL) to `os` during run():
  /// one line per `period_ms` of simulated time, written at the epoch
  /// barrier that reaches the due time (period 0 = every epoch). The
  /// stream must outlive run(); pass nullptr to disable.
  void enable_health_stream(std::ostream* os, DurationMs period_ms = 0);

  /// Attach a schedcheck record/replay session (src/schedcheck). The
  /// session must outlive run() and already be in record or replay mode;
  /// stream 0 receives coordinator decisions (router choice, executor
  /// sync), stream i+1 shard i's (admission, migration, regulator).
  /// Null (the default) leaves every decision point on its one-branch
  /// disabled fast path. Call before run().
  void set_schedule_session(schedcheck::Session* session);

  /// Invoked at every epoch barrier (all shards quiescent at time `t`,
  /// load snapshots fresh) and once after the final epoch — the schedcheck
  /// invariant suite hangs off this. A throwing hook aborts run() with the
  /// exception. Call before run().
  void set_barrier_hook(std::function<void(TimeMs)> hook);

  /// Run every shard for `duration_ms` of simulated time in epochs of one
  /// control period, under the configured runner (lockstep barriers or the
  /// work-stealing ShardExecutor — identical results). One-shot.
  void run(DurationMs duration_ms);

  /// Steal-runner schedule diagnostics from the last run() (all zeros
  /// under lockstep). Wall-clock quantities — never part of the report.
  struct ExecutorStats {
    std::uint64_t jobs_run = 0;
    std::uint64_t steals = 0;      ///< epochs executed off their home worker
    std::uint64_t steal_ns = 0;
    std::uint64_t idle_waits = 0;
    std::uint64_t idle_ns = 0;
    std::uint64_t syncs = 0;  ///< forced drains (load-dependent routing/health)
  };
  const ExecutorStats& executor_stats() const { return exec_stats_; }

  // --- per-shard access (read-only after run) ---
  const platform::CloudPlatform& shard(int i) const;
  obs::Domain& shard_domain(int i);
  const std::vector<ShardLoad>& loads() const { return loads_; }
  std::size_t arrivals_generated() const { return arrivals_; }
  std::size_t routed_to(int i) const;

  // --- aggregation ---
  FleetReport report() const;
  /// Coordinator (router + barrier) + every shard's stage profiler,
  /// merged in shard order.
  obs::StageProfile merged_stage_profile() const;
  /// Every shard's SLO tracker merged (identical class tables — all
  /// shards are built from one platform config).
  std::vector<obs::SloAttainment> merged_slo_attainment() const;
  /// Fold every shard's metrics registry into `out`, in shard order, then
  /// add the merged stage table as profiler.* counters when profiling is
  /// on.
  void merge_metrics(obs::MetricsRegistry& out) const;
  /// All shards' decision events, time-ordered (ties: shard order), one
  /// JSONL object per line with a leading "shard" field.
  void write_merged_events_jsonl(std::ostream& os) const;
  std::string merged_events_jsonl() const;
  /// One Chrome/Perfetto trace with each shard as a process group.
  void write_merged_trace(std::ostream& os) const;

 private:
  struct Shard {
    std::unique_ptr<obs::Domain> domain;
    std::unique_ptr<platform::CloudPlatform> platform;
    std::size_t servers = 0;
    std::size_t routed = 0;
  };

  /// A routed arrival staged for injection at the start of its shard's
  /// epoch job (steal runner): the request is scheduled onto the shard's
  /// event queue by the worker that owns the shard for that epoch, so
  /// engine state stays thread-confined and evolves exactly as lockstep's.
  struct StagedRequest {
    const game::GameSpec* spec = nullptr;
    std::size_t script_idx = 0;
    std::uint64_t player_id = 0;
    TimeMs at = 0;
    platform::RequestMeta meta;
  };

  void refresh_loads();
  /// Drain every arrival source for (t0, t1] into epoch_arrivals_, ordered
  /// by arrival time (stable — ties keep source registration order).
  void drain_sources(TimeMs t0, TimeMs t1);
  /// Route epoch_arrivals_. With `staging == nullptr` requests go straight
  /// onto shard event queues (lockstep); otherwise they are staged per
  /// shard for injection inside that shard's epoch job (steal).
  void route_epoch(std::vector<std::vector<StagedRequest>>* staging);
  void run_lockstep(DurationMs duration_ms);
  void run_steal(DurationMs duration_ms);
  void write_health_snapshot_now(TimeMs t);
  traffic::PoissonSource& poisson_source();

  FleetConfig cfg_;
  std::vector<Shard> shards_;
  std::vector<ShardLoad> loads_;
  Router router_;
  traffic::RegionTable regions_;
  /// Drain order: sources are polled in registration order; the Poisson
  /// source is created lazily on the first add_global_source so a
  /// replay-only fleet never touches the legacy arrival RNG.
  std::vector<std::unique_ptr<traffic::ArrivalSource>> sources_;
  traffic::PoissonSource* poisson_ = nullptr;  ///< owned by sources_
  /// Bound trace arrivals; stable storage borrowed by TraceReplaySources.
  std::vector<std::unique_ptr<std::vector<traffic::Arrival>>> bound_;
  traffic::TraceRecorder* recorder_ = nullptr;
  std::vector<traffic::Arrival> epoch_arrivals_;  ///< per-epoch scratch
  /// Steal-runner staging buffers, one per shard (per-epoch scratch).
  std::vector<std::vector<StagedRequest>> staged_;
  ExecutorStats exec_stats_;
  std::vector<std::size_t> region_routed_;
  std::size_t arrivals_ = 0;
  std::size_t next_server_shard_ = 0;
  bool ran_ = false;

  /// Coordinator-side stage profiler (router + shard barrier). Owned by
  /// the fleet — NOT a domain profiler — so repeated fleet runs in one
  /// process stay independent (the determinism tests rely on this).
  obs::StageProfiler coord_prof_;
  obs::StageTimer prof_router_;
  obs::StageTimer prof_barrier_;

  std::ostream* health_os_ = nullptr;
  DurationMs health_period_ms_ = 0;
  TimeMs health_next_due_ = 0;
  TimeMs health_prev_t_ = 0;
  std::size_t health_prev_arrivals_ = 0;

  /// schedcheck wiring (all null/empty unless explicitly attached).
  schedcheck::Session* sched_session_ = nullptr;
  std::function<void(TimeMs)> barrier_hook_;
  TimeMs sched_now_ = 0;  ///< coordinator-stream clock (epoch start)
  /// Live executor during run_steal() only — lets the health heartbeat
  /// export mid-run executor counters at sync points.
  const ShardExecutor* live_exec_ = nullptr;
};

/// Extended canonical report: the base encoding plus a trailing
/// `"executor"` object (wall-clock schedule diagnostics). Wall-clock
/// numbers are not deterministic, so this variant is for operator-facing
/// outputs; determinism tests keep using the 2-argument form. Pass
/// all-zero stats (a lockstep run) to get a stable executor object.
void write_report_json(const FleetReport& rep, std::ostream& os,
                       const Fleet::ExecutorStats& exec);

}  // namespace cocg::fleet
