#include "fleet/runner.h"

#include <stdexcept>
#include <string>

#include "common/check.h"

namespace cocg::fleet {

void rethrow_job_error(const std::exception_ptr& err, std::size_t job_index) {
  const std::string prefix = "epoch job " + std::to_string(job_index) + ": ";
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    throw std::runtime_error(prefix + e.what());
  } catch (...) {
    throw std::runtime_error(prefix + "unknown exception");
  }
}

EpochPool::EpochPool(int threads) : threads_(threads) {
  COCG_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EpochPool::~EpochPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool EpochPool::claim_and_run() {
  const std::function<void()>* job = nullptr;
  std::size_t idx = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (jobs_ == nullptr || next_job_ >= jobs_->size()) return false;
    idx = next_job_++;
    job = &(*jobs_)[idx];
  }
  std::exception_ptr err;
  try {
    (*job)();
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (err && (error_ == nullptr || idx < first_error_idx_)) {
      error_ = err;
      first_error_idx_ = idx;
    }
    ++done_jobs_;
    if (done_jobs_ == jobs_->size()) done_cv_.notify_all();
  }
  return true;
}

void EpochPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return shutdown_ || (epoch_ != seen && jobs_ != nullptr &&
                             next_job_ < jobs_->size());
      });
      if (shutdown_) return;
      seen = epoch_;
    }
    while (claim_and_run()) {
    }
  }
}

void EpochPool::run(const std::vector<std::function<void()>>& jobs) {
  if (jobs.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    jobs_ = &jobs;
    next_job_ = 0;
    done_jobs_ = 0;
    error_ = nullptr;
    first_error_idx_ = jobs.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller claims jobs too: K shards on K threads run fully parallel.
  while (claim_and_run()) {
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return done_jobs_ == jobs.size(); });
  jobs_ = nullptr;
  if (error_ != nullptr) rethrow_job_error(error_, first_error_idx_);
}

}  // namespace cocg::fleet
