// ShardExecutor — post-lockstep shard scheduling with work stealing.
//
// The lockstep EpochPool advances every shard exactly one control period
// per run() call and meets at a barrier, so the slowest shard of each
// epoch stalls the whole fleet. The ShardExecutor removes the structural
// barrier: each shard owns a private FIFO queue of epoch jobs, and the
// fleet coordinator may enqueue many epochs ahead whenever the routing
// data dependency allows it (see fleet.cpp). Workers prefer their home
// shards (shard % threads == worker) and, when those queues are empty,
// steal the *whole next epoch* of the laggard shard — the runnable shard
// with the deepest backlog — so a slow shard is driven by every idle
// worker in turn instead of stalling them.
//
// Determinism contract: a shard's jobs execute in submission order and
// never concurrently with each other (thread confinement), so per-shard
// state evolves exactly as it would single-threaded; which worker runs a
// job affects wall clock only. The fleet's steal runner therefore
// produces byte-identical reports to lockstep (tests/fleet enforces
// this at 1, 2 and 8 threads).
//
// Error handling matches EpochPool: every submitted job still runs, the
// first failure by submission index is rethrown from drain() with the
// job's index in the message.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cocg::fleet {

/// Which execution model Fleet::run uses. Lockstep is the bitwise
/// reference; steal must reproduce its reports exactly.
enum class RunnerKind { kLockstep, kSteal };

const char* runner_kind_name(RunnerKind kind);
/// Parse "lockstep" / "steal". Returns false on unknown names.
bool parse_runner_kind(const std::string& name, RunnerKind& out);

class ShardExecutor {
 public:
  /// Spawns `threads` worker threads serving `shards` queues. Unlike
  /// EpochPool the caller never claims jobs: the coordinator keeps
  /// routing future epochs while workers execute, which is where the
  /// post-lockstep overlap comes from.
  ShardExecutor(int threads, int shards);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  int threads() const { return threads_; }
  int shards() const { return static_cast<int>(queues_.size()); }

  /// Enqueue the next epoch job for `shard`. Jobs of one shard run in
  /// submission order, one at a time.
  void submit(int shard, std::function<void()> job);

  /// Block until every submitted job has finished. Rethrows the first
  /// error by submission index (wrapped with the job index). Safe to
  /// call repeatedly; submit() may be called again afterwards.
  void drain();

  // --- wall-clock diagnostics (stable only after drain()) ---
  std::uint64_t jobs_run() const;
  /// Jobs executed by a worker other than the shard's home worker.
  std::uint64_t steals() const;
  std::uint64_t steal_ns() const;  ///< wall time inside stolen jobs
  std::uint64_t idle_waits() const;
  std::uint64_t idle_ns() const;   ///< wall time workers spent blocked

  /// All diagnostics in one lock acquisition — the mid-run health
  /// heartbeat reads this at sync points (quiescent after drain()).
  struct Counters {
    std::uint64_t jobs_run = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_ns = 0;
    std::uint64_t idle_waits = 0;
    std::uint64_t idle_ns = 0;
  };
  Counters snapshot() const;

 private:
  struct ShardQueue {
    std::deque<std::pair<std::size_t, std::function<void()>>> jobs;
    bool busy = false;  ///< a worker is executing this shard right now
  };

  void worker_loop(int worker);
  /// Pick a runnable shard for `worker` (deepest home queue first, then
  /// deepest queue overall). Returns -1 when nothing is runnable.
  int pick_shard_locked(int worker) const;

  const int threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue state changed
  std::condition_variable done_cv_;  ///< drain(): a job completed
  std::vector<ShardQueue> queues_;
  std::size_t submitted_ = 0;
  std::size_t done_ = 0;
  std::size_t first_error_idx_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;

  std::uint64_t jobs_run_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t steal_ns_ = 0;
  std::uint64_t idle_waits_ = 0;
  std::uint64_t idle_ns_ = 0;
};

}  // namespace cocg::fleet
