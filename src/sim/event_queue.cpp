#include "sim/event_queue.h"

#include "common/check.h"

namespace cocg::sim {

EventHandle EventQueue::schedule(TimeMs at, EventFn fn) {
  COCG_EXPECTS_MSG(static_cast<bool>(fn), "cannot schedule an empty event");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(fn)});
  live_.insert(seq);
  return EventHandle{seq};
}

bool EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return false;
  return live_.erase(h.seq);
}

void EventQueue::drop_dead_prefix() {
  while (!heap_.empty() && !live_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

TimeMs EventQueue::next_time() const {
  COCG_EXPECTS(!empty());
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead_prefix();
  COCG_CHECK(!self->heap_.empty());
  return heap_.top().at;
}

std::pair<TimeMs, EventFn> EventQueue::pop() {
  COCG_EXPECTS(!empty());
  drop_dead_prefix();
  COCG_CHECK(!heap_.empty());
  // Move out before popping: the callback may schedule new events. The
  // const_cast is safe — the comparator only reads (at, seq), never fn,
  // so sift-down over a moved-from fn is fine.
  Entry& top = const_cast<Entry&>(heap_.top());
  const TimeMs at = top.at;
  const std::uint64_t seq = top.seq;
  EventFn fn = std::move(top.fn);
  heap_.pop();
  live_.erase(seq);
  return {at, std::move(fn)};
}

TimeMs EventQueue::pop_and_run() {
  auto [at, fn] = pop();
  fn();
  return at;
}

}  // namespace cocg::sim
