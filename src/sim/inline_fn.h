// Move-only callable with a large inline buffer, for event-queue storage.
//
// libstdc++'s std::function only stores *trivially copyable* callables in
// its 16-byte small-buffer — a lambda capturing a shared_ptr (the engine's
// periodic re-arm) is heap-allocated on construction and again on every
// copy, which put two mallocs on every simulated tick. InlineFn keeps any
// nothrow-movable callable up to 48 bytes inline and only moves (never
// copies), so scheduling and popping simulation events is allocation-free;
// larger callables fall back to a single heap cell that moves by pointer
// swap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cocg::sim {

class InlineFn {
 public:
  /// Inline capacity: fits the engine's periodic re-arm (one shared_ptr)
  /// and the platform's request-injection lambdas with room to spare.
  static constexpr std::size_t kInlineSize = 48;

  InlineFn() = default;

  template <class F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      obj_ = ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      manage_ = &manage_inline<Fn>;
    } else {
      obj_ = new Fn(std::forward<F>(f));
      manage_ = &manage_heap<Fn>;
    }
    invoke_ = &invoke_as<Fn>;
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(obj_); }

 private:
  enum class Op { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, InlineFn*, InlineFn*);

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static void invoke_as(void* p) {
    (*static_cast<Fn*>(p))();
  }

  template <class Fn>
  static void manage_inline(Op op, InlineFn* self, InlineFn* to) {
    Fn* f = static_cast<Fn*>(self->obj_);
    switch (op) {
      case Op::kMoveTo:
        to->obj_ = ::new (static_cast<void*>(to->buf_)) Fn(std::move(*f));
        f->~Fn();
        break;
      case Op::kDestroy:
        f->~Fn();
        break;
    }
  }

  template <class Fn>
  static void manage_heap(Op op, InlineFn* self, InlineFn* to) {
    switch (op) {
      case Op::kMoveTo:
        to->obj_ = self->obj_;
        break;
      case Op::kDestroy:
        delete static_cast<Fn*>(self->obj_);
        break;
    }
  }

  void move_from(InlineFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) manage_(Op::kMoveTo, &o, this);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
    o.obj_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    obj_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* obj_ = nullptr;  ///< buf_ when inline, heap cell otherwise
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace cocg::sim
