#include "sim/engine.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace cocg::sim {

// Handles are resolved once per engine (against the obs domain active at
// construction); recording is a flag check + pointer write (the event
// loop is the hottest path in the system — see bench_fig12).
Engine::Engine()
    : obs_dispatched_(obs::metrics().counter("sim.events_dispatched")),
      obs_periodic_(obs::metrics().counter("sim.periodic_fires")),
      obs_queue_depth_(obs::metrics().gauge("sim.queue_depth")),
      prof_queue_(obs::stage_timer(obs::Stage::kEventQueue)) {}

struct PeriodicTask::State {
  Engine* engine = nullptr;
  Engine::PeriodicFn fn;
  Engine::DynPeriodicFn dyn_fn;  ///< set instead of fn for dyn tasks
  DurationMs period = 0;
  EventHandle pending;
  bool stopped = false;
};

void PeriodicTask::stop() {
  if (!state_ || state_->stopped) return;
  state_->stopped = true;
  state_->engine->cancel(state_->pending);
}

bool PeriodicTask::active() const { return state_ && !state_->stopped; }

EventHandle Engine::schedule_in(DurationMs delay, EventFn fn) {
  COCG_EXPECTS(delay >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(TimeMs at, EventFn fn) {
  COCG_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  return queue_.schedule(at, std::move(fn));
}

PeriodicTask Engine::schedule_periodic(DurationMs first_delay,
                                       DurationMs period, PeriodicFn fn) {
  COCG_EXPECTS(first_delay >= 0);
  COCG_EXPECTS(period > 0);
  auto state = std::make_shared<PeriodicTask::State>();
  state->engine = this;
  state->fn = std::move(fn);
  state->period = period;

  // Recursive re-arm through a self-referencing lambda stored by value.
  struct Arm {
    static void arm(const std::shared_ptr<PeriodicTask::State>& st,
                    DurationMs delay) {
      st->pending = st->engine->schedule_in(delay, [st] {
        if (st->stopped) return;
        ++st->engine->periodic_fires_;
        st->engine->obs_periodic_.add();
        const bool keep = st->fn(st->engine->now());
        if (keep && !st->stopped) {
          arm(st, st->period);
        } else {
          st->stopped = true;
        }
      });
    }
  };
  Arm::arm(state, first_delay);
  return PeriodicTask(state);
}

PeriodicTask Engine::schedule_periodic_dyn(DurationMs first_delay,
                                           DynPeriodicFn fn) {
  COCG_EXPECTS(first_delay >= 0);
  auto state = std::make_shared<PeriodicTask::State>();
  state->engine = this;
  state->dyn_fn = std::move(fn);

  // Same self-re-arming shape as schedule_periodic, but the callback chooses
  // each next delay itself (0 = stop). The re-armed event gets a fresh heap
  // sequence number, so a coincident event scheduled earlier (e.g. the
  // control tick) keeps firing first — FIFO tie-break preserved.
  struct Arm {
    static void arm(const std::shared_ptr<PeriodicTask::State>& st,
                    DurationMs delay) {
      st->pending = st->engine->schedule_in(delay, [st] {
        if (st->stopped) return;
        ++st->engine->periodic_fires_;
        st->engine->obs_periodic_.add();
        const DurationMs next = st->dyn_fn(st->engine->now());
        if (next > 0 && !st->stopped) {
          arm(st, next);
        } else {
          st->stopped = true;
        }
      });
    }
  };
  Arm::arm(state, first_delay);
  return PeriodicTask(state);
}

void Engine::count_dispatch() {
  ++events_processed_;
  obs_dispatched_.add();
  obs_queue_depth_.set(static_cast<double>(queue_.size()));
}

TimeMs Engine::run_until(TimeMs until) {
  COCG_EXPECTS(until >= now_);
  stop_requested_ = false;
  run_limit_ = until;  // visible to events via run_limit()
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > until) break;
    std::pair<TimeMs, EventFn> ev;
    {
      obs::StageScope scope(prof_queue_);
      ev = queue_.pop();
    }
    now_ = ev.first;  // the event observes its own timestamp via now()
    ev.second();
    count_dispatch();
  }
  run_limit_ = kTimeNever;
  if (now_ < until) now_ = until;
  return now_;
}

TimeMs Engine::run_all() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    std::pair<TimeMs, EventFn> ev;
    {
      obs::StageScope scope(prof_queue_);
      ev = queue_.pop();
    }
    now_ = ev.first;
    ev.second();
    count_dispatch();
  }
  return now_;
}

}  // namespace cocg::sim
