// Open-addressing set of event sequence numbers.
//
// The event queue tracks which scheduled events are still live. A
// std::unordered_set allocates one node per insert, which puts a
// malloc/free pair on every simulated tick — the hottest path in the
// system. SeqSet stores the u64 seqs inline in a power-of-two table with
// linear probing and backward-shift deletion, so inserts and erases are
// allocation-free once the table has reached its high-water size.
//
// Seq 0 is reserved as the empty-slot sentinel (EventHandle seqs start
// at 1).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace cocg::sim {

class SeqSet {
 public:
  SeqSet() : slots_(kMinCapacity, 0) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(std::uint64_t seq) const {
    COCG_EXPECTS(seq != 0);
    std::size_t i = index_of(seq);
    while (slots_[i] != 0) {
      if (slots_[i] == seq) return true;
      i = (i + 1) & mask();
    }
    return false;
  }

  /// Returns false if already present.
  bool insert(std::uint64_t seq) {
    COCG_EXPECTS(seq != 0);
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    std::size_t i = index_of(seq);
    while (slots_[i] != 0) {
      if (slots_[i] == seq) return false;
      i = (i + 1) & mask();
    }
    slots_[i] = seq;
    ++size_;
    return true;
  }

  /// Returns false if not present. Backward-shift deletion keeps probe
  /// chains intact without tombstones.
  bool erase(std::uint64_t seq) {
    COCG_EXPECTS(seq != 0);
    std::size_t i = index_of(seq);
    while (slots_[i] != seq) {
      if (slots_[i] == 0) return false;
      i = (i + 1) & mask();
    }
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask();
    while (slots_[j] != 0) {
      const std::size_t home = index_of(slots_[j]);
      // Shift back iff the hole lies within [home, j] cyclically.
      const bool movable = ((j - home) & mask()) >= ((j - hole) & mask());
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask();
    }
    slots_[hole] = 0;
    --size_;
    return true;
  }

  void clear() {
    for (auto& s : slots_) s = 0;
    size_ = 0;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t index_of(std::uint64_t seq) const {
    // splitmix64-style finalizer: seqs are sequential, so spread them.
    std::uint64_t z = seq;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31)) & mask();
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    size_ = 0;
    for (std::uint64_t s : old) {
      if (s != 0) insert(s);
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace cocg::sim
