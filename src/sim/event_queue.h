// Priority queue of timestamped events with deterministic tie-breaking.
//
// Events at the same timestamp fire in insertion order (FIFO), which keeps
// whole-platform simulations bit-reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/inline_fn.h"
#include "sim/seq_set.h"

namespace cocg::sim {

// Move-only with a 48-byte inline buffer: the simulation loop's callbacks
// (periodic re-arm, source injections) schedule and pop without touching
// the heap. See inline_fn.h for why std::function could not do this.
using EventFn = InlineFn;

/// Handle used to cancel a scheduled event.
struct EventHandle {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.
  EventHandle schedule(TimeMs at, EventFn fn);

  /// Cancel a previously scheduled event. Returns false if it already fired
  /// or was already cancelled. Amortized O(1): the heap slot is lazily
  /// skipped on pop.
  bool cancel(EventHandle h);

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event. Requires !empty().
  TimeMs next_time() const;

  /// Pop and run the earliest live event; returns its timestamp.
  /// Requires !empty().
  TimeMs pop_and_run();

  /// Remove and return the earliest live event without running it.
  /// Requires !empty().
  std::pair<TimeMs, EventFn> pop();

 private:
  struct Entry {
    TimeMs at;
    std::uint64_t seq;  // insertion order; also the cancellation key
    EventFn fn;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void drop_dead_prefix();

  // Min-heap by (time, seq). `live_` holds seqs that are scheduled and not
  // yet fired or cancelled; heap entries not in `live_` are skipped.
  // SeqSet stores seqs inline (open addressing), so the schedule/pop cycle
  // of the simulation loop is allocation-free at steady state.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SeqSet live_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace cocg::sim
