// Discrete-event simulation engine: clock + event loop + periodic tasks.
//
// The whole cloud platform (sessions, telemetry samplers, the CoCG 5-second
// detection loop, arrival processes) runs as events on one Engine, so a full
// 2-hour co-location experiment executes in milliseconds of wall time and is
// fully deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sim/event_queue.h"

namespace cocg::sim {

class Engine;

/// Handle to a periodic task; stays valid across re-arms.
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Stop the task: cancels the pending occurrence and prevents re-arming.
  /// Safe to call multiple times and on a default-constructed handle.
  void stop();

  bool active() const;

 private:
  friend class Engine;
  struct State;
  explicit PeriodicTask(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  TimeMs now() const { return now_; }

  /// Schedule `fn` `delay` ms from now (delay >= 0).
  EventHandle schedule_in(DurationMs delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (at >= now()).
  EventHandle schedule_at(TimeMs at, EventFn fn);

  /// Repeatedly run `fn` every `period` ms, starting `first_delay` from now.
  /// `fn` receives the firing time; returning false stops the task.
  using PeriodicFn = std::function<bool(TimeMs)>;
  PeriodicTask schedule_periodic(DurationMs first_delay, DurationMs period,
                                 PeriodicFn fn);

  /// Variable-period periodic task: `fn` receives the firing time and
  /// returns the delay until its next occurrence, or 0 to stop. This is how
  /// the quiescence-aware platform stretches its hardware tick across a
  /// macro-tick window ((w+1)·tick_ms) and snaps back to tick_ms when the
  /// fleet goes non-quiescent.
  using DynPeriodicFn = std::function<DurationMs(TimeMs)>;
  PeriodicTask schedule_periodic_dyn(DurationMs first_delay, DynPeriodicFn fn);

  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Run until the queue is empty or `until` is reached (events at exactly
  /// `until` still run). Returns the final simulated time.
  TimeMs run_until(TimeMs until);

  /// Run until the queue drains completely.
  TimeMs run_all();

  /// Request that run_* return after the current event completes.
  void stop() { stop_requested_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t periodic_fires() const { return periodic_fires_; }

  // --- quiescence support (macro-tick fast-forward) ---

  /// Timestamp of the earliest pending event, or kTimeNever when idle.
  TimeMs next_event_time() const {
    return queue_.empty() ? kTimeNever : queue_.next_time();
  }

  /// The `until` bound of the run_until() currently executing on this
  /// engine, or kTimeNever outside run_until (including run_all). Callers
  /// that skip ahead (fast-forward) must not advance state past this: the
  /// fleet's epoch barrier reads shard state at exactly this time.
  TimeMs run_limit() const { return run_limit_; }

  /// Earliest time anything is scheduled to happen: min of the next pending
  /// event and the active run limit. A tick handler may advance internal
  /// state analytically up to (but not across) this bound.
  TimeMs next_interesting_time() const {
    return std::min(next_event_time(), run_limit());
  }

 private:
  friend class PeriodicTask;
  void count_dispatch();

  EventQueue queue_;
  TimeMs now_ = 0;
  TimeMs run_limit_ = kTimeNever;
  bool stop_requested_ = false;
  std::uint64_t events_processed_ = 0;
  std::uint64_t periodic_fires_ = 0;

  // Event-loop metrics, resolved per engine against the obs domain active
  // at construction — fleet shards each run their own Engine under their
  // own domain, so these must not be process-wide statics.
  obs::Counter obs_dispatched_;
  obs::Counter obs_periodic_;
  obs::Gauge obs_queue_depth_;
  // Stage profiler scope around queue management (pop + heap fix-up);
  // deliberately NOT around the event callback, which the tick stages
  // account for themselves.
  obs::StageTimer prof_queue_;
};

}  // namespace cocg::sim
