// CART decision trees: a Gini classifier (the paper's DTC) and a
// squared-error regression tree (the weak learner inside GBDT).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace cocg::ml {

struct TreeConfig {
  int max_depth = 12;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 means all (plain CART),
  /// smaller values give the random-forest style feature subsampling.
  std::size_t max_features = 0;
};

/// One node in the flattened tree. Leaves have feature == -1.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;   ///< child index, samples with x[feature] <= threshold
  int right = -1;
  int label = 0;           ///< classifier leaf: majority class
  double value = 0.0;      ///< regression leaf: mean target
  std::size_t n_samples = 0;
};

/// Multiclass Gini-impurity CART classifier.
class DecisionTreeClassifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig cfg = {}) : cfg_(cfg) {}

  /// `rng` is only consulted when cfg.max_features > 0.
  void fit(const Dataset& data, Rng& rng);
  void fit(const Dataset& data);  ///< deterministic, all features

  bool trained() const { return !nodes_.empty(); }
  int predict(const FeatureRow& x) const;
  std::vector<int> predict_all(const std::vector<FeatureRow>& xs) const;

  /// Class-probability estimate at the reached leaf.
  std::vector<double> predict_proba(const FeatureRow& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;
  int num_classes() const { return num_classes_; }

  // Read-only views for compilation into a CompiledForest (ml/compiled.h).
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  const std::vector<std::vector<double>>& leaf_probabilities() const {
    return leaf_proba_;
  }

 private:
  struct BuildCtx;
  int build(BuildCtx& ctx, std::vector<std::size_t>& idx, int depth);

  TreeConfig cfg_;
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<double>> leaf_proba_;  // parallel to nodes_
  int num_classes_ = 0;
};

/// Squared-error regression tree (for gradient boosting).
class RegressionTree {
 public:
  explicit RegressionTree(TreeConfig cfg = {}) : cfg_(cfg) {}

  void fit(const std::vector<FeatureRow>& x, const std::vector<double>& y);

  bool trained() const { return !nodes_.empty(); }
  double predict(const FeatureRow& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

 private:
  struct BuildCtx;
  int build(BuildCtx& ctx, std::vector<std::size_t>& idx, int depth);

  TreeConfig cfg_;
  std::vector<TreeNode> nodes_;
};

}  // namespace cocg::ml
