// Tabular dataset for the stage predictor's offline training (§IV-B).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace cocg::ml {

using FeatureRow = std::vector<double>;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  /// Append one labelled example; row width must match existing rows.
  void add(FeatureRow x, int y);

  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }
  std::size_t num_features() const { return x_.empty() ? 0 : x_[0].size(); }

  const FeatureRow& x(std::size_t i) const { return x_[i]; }
  int y(std::size_t i) const { return y_[i]; }
  const std::vector<FeatureRow>& features() const { return x_; }
  const std::vector<int>& labels() const { return y_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Number of distinct label values assuming labels in [0, max_label].
  int num_classes() const;

  /// Randomly split into (train, test) with `train_fraction` of rows in the
  /// train part — the paper uses 75/25 (§V-D2).
  std::pair<Dataset, Dataset> split(double train_fraction, Rng& rng) const;

  /// Subset by row indices (repeats allowed — used for bootstrap bagging).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Concatenate another dataset with the same width.
  void append(const Dataset& other);

 private:
  std::vector<std::string> feature_names_;
  std::vector<FeatureRow> x_;
  std::vector<int> y_;
};

}  // namespace cocg::ml
