#include "ml/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace cocg::ml {

double KMeans::dist_sq(const Point& a, const Point& b) {
  COCG_EXPECTS(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

int KMeans::predict(const std::vector<Point>& centroids, const Point& p) {
  COCG_EXPECTS(!centroids.empty());
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = dist_sq(centroids[c], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double KMeans::sse(const std::vector<Point>& points,
                   const std::vector<Point>& centroids,
                   const std::vector<int>& assignment) {
  COCG_EXPECTS(points.size() == assignment.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int c = assignment[i];
    COCG_EXPECTS(c >= 0 && static_cast<std::size_t>(c) < centroids.size());
    acc += dist_sq(points[i], centroids[static_cast<std::size_t>(c)]);
  }
  return acc;
}

namespace {

// k-means++ seeding: first centroid uniform, each next proportional to
// squared distance from the nearest chosen centroid.
std::vector<Point> seed_plusplus(const std::vector<Point>& points, int k,
                                 Rng& rng) {
  std::vector<Point> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(points.size()) - 1))]);
  std::vector<double> d2(points.size());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) {
        best = std::min(best, KMeans::dist_sq(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids: duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    centroids.push_back(points[rng.weighted_index(d2)]);
  }
  return centroids;
}

KMeansResult lloyd(const std::vector<Point>& points, const KMeansConfig& cfg,
                   std::vector<Point> centroids) {
  const std::size_t n = points.size();
  const std::size_t dims = points[0].size();
  const auto k = static_cast<std::size_t>(cfg.k);

  KMeansResult res;
  res.assignment.assign(n, 0);

  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      res.assignment[i] = KMeans::predict(centroids, points[i]);
    }
    // Update step.
    std::vector<Point> sums(k, Point(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      Point next(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      movement += KMeans::dist_sq(centroids[c], next);
      centroids[c] = std::move(next);
    }
    res.iterations = iter + 1;
    if (movement < cfg.tolerance) {
      res.converged = true;
      break;
    }
  }
  // Final assignment against the final centroids.
  for (std::size_t i = 0; i < n; ++i) {
    res.assignment[i] = KMeans::predict(centroids, points[i]);
  }
  res.centroids = std::move(centroids);
  res.sse = KMeans::sse(points, res.centroids, res.assignment);
  return res;
}

}  // namespace

KMeansResult KMeans::fit(const std::vector<Point>& points,
                         const KMeansConfig& cfg, Rng& rng) {
  COCG_EXPECTS(cfg.k >= 1);
  COCG_EXPECTS_MSG(points.size() >= static_cast<std::size_t>(cfg.k),
                   "need at least k points");
  COCG_EXPECTS(cfg.restarts >= 1);
  for (const auto& p : points) {
    COCG_EXPECTS_MSG(p.size() == points[0].size(),
                     "all points must share one width");
  }

  KMeansResult best;
  best.sse = std::numeric_limits<double>::max();
  for (int r = 0; r < cfg.restarts; ++r) {
    auto res = lloyd(points, cfg, seed_plusplus(points, cfg.k, rng));
    if (res.sse < best.sse) best = std::move(res);
  }
  return best;
}

std::vector<double> sse_curve(const std::vector<Point>& points, int k_max,
                              Rng& rng, int restarts) {
  COCG_EXPECTS(k_max >= 1);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(k_max));
  for (int k = 1; k <= k_max; ++k) {
    if (static_cast<std::size_t>(k) > points.size()) break;
    KMeansConfig cfg;
    cfg.k = k;
    cfg.restarts = restarts;
    out.push_back(KMeans::fit(points, cfg, rng).sse);
  }
  return out;
}

int pick_elbow(const std::vector<double>& sse_by_k, double min_gain) {
  COCG_EXPECTS(!sse_by_k.empty());
  COCG_EXPECTS(min_gain > 0.0 && min_gain < 1.0);
  for (std::size_t i = 1; i < sse_by_k.size(); ++i) {
    const double prev = sse_by_k[i - 1];
    if (prev <= 0.0) return static_cast<int>(i);  // already perfect fit
    const double gain = (prev - sse_by_k[i]) / prev;
    if (gain < min_gain) return static_cast<int>(i);  // K = i (1-based K of prev)
  }
  return static_cast<int>(sse_by_k.size());
}

}  // namespace cocg::ml
