// Graph-partitioning clustering — the alternative the paper evaluated
// against K-means (§V-D1: "K-means demonstrated significantly higher
// accuracy compared to other clustering methods like Graph Partitioning,
// which does not require the number of clusters").
//
// Classic single-linkage graph clustering: connect every pair of points
// closer than a distance threshold (or mutual k-nearest-neighbours), then
// report connected components as clusters. No K required — but chaining
// merges adjacent resource clusters, which is exactly why it loses to
// K-means on frame data.
#pragma once

#include <vector>

#include "ml/kmeans.h"

namespace cocg::ml {

struct GraphClusterConfig {
  /// Edge rule: connect points within `epsilon` (normalized distance).
  /// epsilon <= 0 selects the adaptive rule: epsilon = scale × the median
  /// nearest-neighbour distance.
  double epsilon = 0.0;
  double adaptive_scale = 3.0;
  /// Components smaller than this are merged into the nearest big cluster
  /// (noise handling).
  std::size_t min_cluster_size = 3;
};

struct GraphClusterResult {
  std::vector<int> assignment;   ///< per-point component id (0-based, dense)
  std::vector<Point> centroids;  ///< component means
  int num_clusters = 0;
  double epsilon_used = 0.0;
};

/// Cluster `points` by distance-threshold connectivity.
GraphClusterResult graph_cluster(const std::vector<Point>& points,
                                 const GraphClusterConfig& cfg = {});

/// Adjusted Rand Index between two labelings of the same points:
/// 1 = identical partitions, ~0 = random agreement. Standard Hubert-Arabie
/// form; requires equal non-empty sizes.
double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b);

}  // namespace cocg::ml
