// Uniform classifier interface over DTC / RF / GBDT.
//
// The stage predictor's "replacing model" fallback (§IV-B2) swaps between
// the three algorithms at runtime, so they share this small polymorphic
// facade. Adapters are header-only thin wrappers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"

namespace cocg::ml {

enum class ModelKind { kDtc, kRf, kGbdt };

const char* model_kind_name(ModelKind kind);

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data, Rng& rng) = 0;
  virtual int predict(const FeatureRow& x) const = 0;
  virtual std::vector<double> predict_proba(const FeatureRow& x) const = 0;
  virtual bool trained() const = 0;
  virtual ModelKind kind() const = 0;

  std::vector<int> predict_all(const std::vector<FeatureRow>& xs) const {
    std::vector<int> out;
    out.reserve(xs.size());
    for (const auto& x : xs) out.push_back(predict(x));
    return out;
  }
};

class DtcModel final : public Classifier {
 public:
  explicit DtcModel(TreeConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override { impl_.fit(data, rng); }
  int predict(const FeatureRow& x) const override { return impl_.predict(x); }
  std::vector<double> predict_proba(const FeatureRow& x) const override {
    return impl_.predict_proba(x);
  }
  bool trained() const override { return impl_.trained(); }
  ModelKind kind() const override { return ModelKind::kDtc; }

 private:
  DecisionTreeClassifier impl_;
};

class RfModel final : public Classifier {
 public:
  explicit RfModel(RandomForestConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override { impl_.fit(data, rng); }
  int predict(const FeatureRow& x) const override { return impl_.predict(x); }
  std::vector<double> predict_proba(const FeatureRow& x) const override {
    return impl_.predict_proba(x);
  }
  bool trained() const override { return impl_.trained(); }
  ModelKind kind() const override { return ModelKind::kRf; }

 private:
  RandomForestClassifier impl_;
};

class GbdtModel final : public Classifier {
 public:
  explicit GbdtModel(GbdtConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override { impl_.fit(data, rng); }
  int predict(const FeatureRow& x) const override { return impl_.predict(x); }
  std::vector<double> predict_proba(const FeatureRow& x) const override {
    return impl_.predict_proba(x);
  }
  bool trained() const override { return impl_.trained(); }
  ModelKind kind() const override { return ModelKind::kGbdt; }

 private:
  GbdtClassifier impl_;
};

/// Factory with default configurations tuned for stage prediction.
std::unique_ptr<Classifier> make_classifier(ModelKind kind);

}  // namespace cocg::ml
