// Uniform classifier interface over DTC / RF / GBDT.
//
// The stage predictor's "replacing model" fallback (§IV-B2) swaps between
// the three algorithms at runtime, so they share this small facade. Since
// the compiled-inference refactor, only *training* is polymorphic: `fit`
// runs the per-algorithm learner and then compiles the result into an
// immutable CompiledForest (ml/compiled.h), and every inference entry
// point — scalar or batched — runs against that shared artifact. A
// classifier can also be `restore`d directly from a deserialized artifact
// (ml/model_io.h) without ever training.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/compiled.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"

namespace cocg::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains the underlying algorithm, then compiles it into the immutable
  /// artifact all the inference calls below run against.
  virtual void fit(const Dataset& data, Rng& rng) = 0;
  virtual ModelKind kind() const = 0;

  bool trained() const { return compiled_ != nullptr; }

  int predict(const FeatureRow& x) const;
  std::vector<double> predict_proba(const FeatureRow& x) const;
  std::vector<int> predict_all(const std::vector<FeatureRow>& xs) const;
  void predict_batch(const FeatureMatrix& xs, std::span<int> out) const;
  void predict_proba_batch(const FeatureMatrix& xs,
                           std::span<double> out) const;

  /// The compiled artifact (null before fit/restore). Shared and immutable:
  /// the ModelBank hands the same forest to every session of a game.
  std::shared_ptr<const CompiledForest> compiled() const { return compiled_; }

  /// Adopts a previously compiled or deserialized artifact. Throws
  /// std::runtime_error if `forest` is null, untrained, or of a different
  /// kind than this classifier.
  void restore(std::shared_ptr<const CompiledForest> forest);

 protected:
  std::shared_ptr<const CompiledForest> compiled_;
};

class DtcModel final : public Classifier {
 public:
  explicit DtcModel(TreeConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override;
  ModelKind kind() const override { return ModelKind::kDtc; }

 private:
  DecisionTreeClassifier impl_;
};

class RfModel final : public Classifier {
 public:
  explicit RfModel(RandomForestConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override;
  ModelKind kind() const override { return ModelKind::kRf; }

 private:
  RandomForestClassifier impl_;
};

class GbdtModel final : public Classifier {
 public:
  explicit GbdtModel(GbdtConfig cfg = {}) : impl_(cfg) {}
  void fit(const Dataset& data, Rng& rng) override;
  ModelKind kind() const override { return ModelKind::kGbdt; }

 private:
  GbdtClassifier impl_;
};

/// Factory with default configurations tuned for stage prediction.
std::unique_ptr<Classifier> make_classifier(ModelKind kind);

}  // namespace cocg::ml
