// Classification quality metrics (accuracy, confusion matrix, macro-F1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cocg::ml {

/// Fraction of positions where truth == predicted. Requires equal sizes,
/// non-empty.
double accuracy(const std::vector<int>& truth, const std::vector<int>& pred);

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  ConfusionMatrix(const std::vector<int>& truth, const std::vector<int>& pred);

  int num_classes() const { return n_; }
  std::size_t count(int true_c, int pred_c) const;
  std::size_t total() const { return total_; }

  double accuracy() const;
  double precision(int c) const;  ///< 0 when the class was never predicted
  double recall(int c) const;     ///< 0 when the class never occurred
  double f1(int c) const;
  double macro_f1() const;

  std::string str() const;

 private:
  int n_ = 0;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // n_ x n_ row-major
};

}  // namespace cocg::ml
