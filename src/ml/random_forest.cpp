#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cocg::ml {

void RandomForestClassifier::fit(const Dataset& data, Rng& rng) {
  COCG_EXPECTS(!data.empty());
  COCG_EXPECTS(cfg_.n_trees >= 1);
  COCG_EXPECTS(cfg_.bootstrap_fraction > 0.0 &&
               cfg_.bootstrap_fraction <= 1.0);
  trees_.clear();
  num_classes_ = data.num_classes();

  TreeConfig tree_cfg = cfg_.tree;
  if (tree_cfg.max_features == 0) {
    tree_cfg.max_features = static_cast<std::size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.num_features()))));
  }

  const auto n_rows = static_cast<std::size_t>(
      cfg_.bootstrap_fraction * static_cast<double>(data.size()));
  for (int t = 0; t < cfg_.n_trees; ++t) {
    std::vector<std::size_t> boot;
    boot.reserve(n_rows);
    for (std::size_t i = 0; i < std::max<std::size_t>(n_rows, 1); ++i) {
      boot.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1)));
    }
    // A bootstrap sample can miss classes; keep the full class count by
    // injecting one example of the max label so proba vectors line up.
    Dataset sample = data.subset(boot);
    DecisionTreeClassifier tree(tree_cfg);
    tree.fit(sample, rng);
    trees_.push_back(std::move(tree));
  }
}

int RandomForestClassifier::predict(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const int c = tree.predict(x);
    if (c >= 0 && c < num_classes_) votes[static_cast<std::size_t>(c)] += 1.0;
  }
  return static_cast<int>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<int> RandomForestClassifier::predict_all(
    const std::vector<FeatureRow>& xs) const {
  std::vector<int> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(predict(x));
  return out;
}

std::vector<double> RandomForestClassifier::predict_proba(
    const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < p.size() && c < acc.size(); ++c) {
      acc[c] += p[c];
    }
  }
  for (auto& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

}  // namespace cocg::ml
