// CompiledForest persistence.
//
// Mirrors core/profile_io: a versioned, line-oriented, human-diffable text
// format, so trained models can ship alongside game profiles and load on
// any scheduler node ("profiling and training only need to be performed
// once", §IV-B1). Doubles are written with max_digits10 significant
// digits, so a round trip restores the exact bits and the restored model's
// predictions are bit-identical to the original's.
//
// The block is self-delimiting (count-driven, closed by an `end-model`
// line), so it can be embedded mid-stream inside larger artifacts — the
// predictor bundles in core/stage_predictor.h do exactly that via the
// LineReader overloads.
#pragma once

#include <iosfwd>
#include <string>

#include "common/textio.h"
#include "ml/compiled.h"

namespace cocg::ml {

/// Serialize a trained compiled model. Throws std::runtime_error on I/O
/// failure or if the model is untrained.
void save_model(const CompiledForest& model, const std::string& path);
void write_model(const CompiledForest& model, std::ostream& os);

/// Deserialize and re-validate every structural invariant. Throws
/// std::runtime_error with a line/field diagnostic on truncated, corrupt,
/// or version-skewed input.
CompiledForest load_model(const std::string& path);
CompiledForest read_model(std::istream& is);
/// Embedded form: consumes one model block from an outer artifact's
/// reader, keeping its running line numbers in diagnostics.
CompiledForest read_model(LineReader& r);

}  // namespace cocg::ml
