#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace cocg::ml {

namespace {

void softmax_inplace(std::vector<double>& scores) {
  const double mx = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (auto& s : scores) {
    s = std::exp(s - mx);
    total += s;
  }
  for (auto& s : scores) s /= total;
}

}  // namespace

void GbdtClassifier::fit(const Dataset& data, Rng& rng) {
  COCG_EXPECTS(!data.empty());
  COCG_EXPECTS(cfg_.n_rounds >= 1);
  COCG_EXPECTS(cfg_.learning_rate > 0.0 && cfg_.learning_rate <= 1.0);
  COCG_EXPECTS(cfg_.subsample > 0.0 && cfg_.subsample <= 1.0);

  num_classes_ = data.num_classes();
  const auto k = static_cast<std::size_t>(num_classes_);
  const std::size_t n = data.size();
  trees_.clear();

  // Base score = log class prior (with Laplace smoothing).
  std::vector<double> prior(k, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    prior[static_cast<std::size_t>(data.y(i))] += 1.0;
  }
  base_score_.assign(k, 0.0);
  const double total = static_cast<double>(n) + static_cast<double>(k);
  for (std::size_t c = 0; c < k; ++c) {
    base_score_[c] = std::log(prior[c] / total);
  }

  // Current raw scores per row per class.
  std::vector<std::vector<double>> score(n, base_score_);

  for (int round = 0; round < cfg_.n_rounds; ++round) {
    // Row subsample for this round.
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    if (cfg_.subsample < 1.0) {
      rng.shuffle(rows.begin(), rows.end());
      rows.resize(std::max<std::size_t>(
          1, static_cast<std::size_t>(cfg_.subsample *
                                      static_cast<double>(n))));
      std::sort(rows.begin(), rows.end());
    }

    // Gradient targets: one-hot − softmax probability.
    std::vector<FeatureRow> xs;
    xs.reserve(rows.size());
    std::vector<std::vector<double>> residuals(
        k, std::vector<double>(rows.size()));
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t i = rows[r];
      xs.push_back(data.x(i));
      std::vector<double> p = score[i];
      softmax_inplace(p);
      for (std::size_t c = 0; c < k; ++c) {
        const double target = (static_cast<std::size_t>(data.y(i)) == c)
                                  ? 1.0
                                  : 0.0;
        residuals[c][r] = target - p[c];
      }
    }

    std::vector<RegressionTree> round_trees;
    round_trees.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      RegressionTree tree(cfg_.tree);
      tree.fit(xs, residuals[c]);
      round_trees.push_back(std::move(tree));
    }

    // Update every row's score (not just the subsample) so later gradients
    // see the full model.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        score[i][c] += cfg_.learning_rate * round_trees[c].predict(data.x(i));
      }
    }
    trees_.push_back(std::move(round_trees));
  }
}

std::vector<double> GbdtClassifier::raw_scores(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::vector<double> s = base_score_;
  for (const auto& round : trees_) {
    for (std::size_t c = 0; c < s.size(); ++c) {
      s[c] += cfg_.learning_rate * round[c].predict(x);
    }
  }
  return s;
}

int GbdtClassifier::predict(const FeatureRow& x) const {
  const auto s = raw_scores(x);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<int> GbdtClassifier::predict_all(
    const std::vector<FeatureRow>& xs) const {
  std::vector<int> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(predict(x));
  return out;
}

std::vector<double> GbdtClassifier::predict_proba(const FeatureRow& x) const {
  auto s = raw_scores(x);
  softmax_inplace(s);
  return s;
}

int GbdtClassifier::rounds_trained() const {
  return static_cast<int>(trees_.size());
}

}  // namespace cocg::ml
