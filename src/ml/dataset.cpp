#include "ml/dataset.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace cocg::ml {

void Dataset::add(FeatureRow x, int y) {
  COCG_EXPECTS_MSG(y >= 0, "labels must be non-negative class indices");
  COCG_EXPECTS_MSG(x_.empty() || x.size() == x_[0].size(),
                   "row width must match dataset width");
  x_.push_back(std::move(x));
  y_.push_back(y);
}

int Dataset::num_classes() const {
  int mx = -1;
  for (int y : y_) mx = std::max(mx, y);
  return mx + 1;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           Rng& rng) const {
  COCG_EXPECTS(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx.begin(), idx.end());
  const auto n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(size()));
  Dataset train(feature_names_), test(feature_names_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto& dst = (i < n_train) ? train : test;
    dst.add(x_[idx[i]], y_[idx[i]]);
  }
  return {std::move(train), std::move(test)};
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(feature_names_);
  for (std::size_t i : indices) {
    COCG_EXPECTS(i < size());
    out.add(x_[i], y_[i]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  COCG_EXPECTS_MSG(
      empty() || other.empty() || num_features() == other.num_features(),
      "dataset widths must match");
  for (std::size_t i = 0; i < other.size(); ++i) {
    add(other.x(i), other.y(i));
  }
}

}  // namespace cocg::ml
