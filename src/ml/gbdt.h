// Gradient-boosted decision trees, multiclass via one-vs-all softmax
// (the paper's GBDT predictor option, §IV-B1).
//
// Standard formulation: K parallel boosting chains of shallow regression
// trees fit to the softmax gradient (residual = one-hot(y) − p), with
// shrinkage. Predictions are argmax over accumulated raw scores.
#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/tree.h"

namespace cocg::ml {

struct GbdtConfig {
  int n_rounds = 40;
  double learning_rate = 0.2;
  TreeConfig tree{/*max_depth=*/4, /*min_samples_split=*/4,
                  /*min_samples_leaf=*/2, /*max_features=*/0};
  double subsample = 1.0;  ///< row fraction per round (stochastic GB)
};

class GbdtClassifier {
 public:
  explicit GbdtClassifier(GbdtConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data, Rng& rng);

  bool trained() const { return num_classes_ > 0; }
  int predict(const FeatureRow& x) const;
  std::vector<int> predict_all(const std::vector<FeatureRow>& xs) const;
  std::vector<double> predict_proba(const FeatureRow& x) const;

  int num_classes() const { return num_classes_; }
  int rounds_trained() const;

  // Read-only views for compilation into a CompiledForest (ml/compiled.h).
  const GbdtConfig& config() const { return cfg_; }
  const std::vector<double>& base_scores() const { return base_score_; }
  const std::vector<std::vector<RegressionTree>>& trees() const {
    return trees_;
  }

 private:
  std::vector<double> raw_scores(const FeatureRow& x) const;

  GbdtConfig cfg_;
  int num_classes_ = 0;
  std::vector<double> base_score_;                 ///< per class (log prior)
  std::vector<std::vector<RegressionTree>> trees_; ///< [round][class]
};

}  // namespace cocg::ml
