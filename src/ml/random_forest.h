// Random forest: bootstrap-bagged Gini trees with feature subsampling,
// majority vote (the paper's RF predictor option, §IV-B1).
#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/tree.h"

namespace cocg::ml {

struct RandomForestConfig {
  int n_trees = 25;
  TreeConfig tree;               ///< tree.max_features==0 → sqrt(#features)
  double bootstrap_fraction = 1.0;
};

class RandomForestClassifier {
 public:
  explicit RandomForestClassifier(RandomForestConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data, Rng& rng);

  bool trained() const { return !trees_.empty(); }
  int predict(const FeatureRow& x) const;
  std::vector<int> predict_all(const std::vector<FeatureRow>& xs) const;

  /// Averaged leaf probabilities across trees.
  std::vector<double> predict_proba(const FeatureRow& x) const;

  std::size_t tree_count() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  const std::vector<DecisionTreeClassifier>& trees() const { return trees_; }

 private:
  RandomForestConfig cfg_;
  std::vector<DecisionTreeClassifier> trees_;
  int num_classes_ = 0;
};

}  // namespace cocg::ml
