#include "ml/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace cocg::ml {

double accuracy(const std::vector<int>& truth, const std::vector<int>& pred) {
  COCG_EXPECTS(truth.size() == pred.size());
  COCG_EXPECTS(!truth.empty());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

ConfusionMatrix::ConfusionMatrix(const std::vector<int>& truth,
                                 const std::vector<int>& pred) {
  COCG_EXPECTS(truth.size() == pred.size());
  COCG_EXPECTS(!truth.empty());
  int mx = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    COCG_EXPECTS(truth[i] >= 0 && pred[i] >= 0);
    mx = std::max({mx, truth[i], pred[i]});
  }
  n_ = mx + 1;
  cells_.assign(static_cast<std::size_t>(n_) * n_, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++cells_[static_cast<std::size_t>(truth[i]) * n_ + pred[i]];
  }
  total_ = truth.size();
}

std::size_t ConfusionMatrix::count(int true_c, int pred_c) const {
  COCG_EXPECTS(true_c >= 0 && true_c < n_ && pred_c >= 0 && pred_c < n_);
  return cells_[static_cast<std::size_t>(true_c) * n_ + pred_c];
}

double ConfusionMatrix::accuracy() const {
  std::size_t hits = 0;
  for (int c = 0; c < n_; ++c) hits += count(c, c);
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int c) const {
  std::size_t col = 0;
  for (int r = 0; r < n_; ++r) col += count(r, c);
  if (col == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(col);
}

double ConfusionMatrix::recall(int c) const {
  std::size_t row = 0;
  for (int p = 0; p < n_; ++p) row += count(c, p);
  if (row == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::f1(int c) const {
  const double p = precision(c), r = recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  for (int c = 0; c < n_; ++c) acc += f1(c);
  return acc / static_cast<double>(n_);
}

std::string ConfusionMatrix::str() const {
  std::ostringstream os;
  os << "confusion (rows=true, cols=pred):\n";
  for (int r = 0; r < n_; ++r) {
    for (int c = 0; c < n_; ++c) {
      os << count(r, c) << (c + 1 == n_ ? '\n' : '\t');
    }
  }
  return os.str();
}

}  // namespace cocg::ml
