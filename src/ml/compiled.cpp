#include "ml/compiled.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/tree.h"

namespace cocg::ml {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDtc: return "DTC";
    case ModelKind::kRf: return "RF";
    case ModelKind::kGbdt: return "GBDT";
  }
  return "?";
}

bool parse_model_kind(const std::string& name, ModelKind& out) {
  if (name == "DTC") out = ModelKind::kDtc;
  else if (name == "RF") out = ModelKind::kRf;
  else if (name == "GBDT") out = ModelKind::kGbdt;
  else return false;
  return true;
}

// ---------------------------------------------------------------------------
// FeatureMatrix
// ---------------------------------------------------------------------------

FeatureMatrix::FeatureMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

FeatureMatrix FeatureMatrix::from_rows(const std::vector<FeatureRow>& rows) {
  FeatureMatrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    COCG_EXPECTS_MSG(rows[i].size() == m.cols_,
                     "FeatureMatrix rows must have equal width");
    std::copy(rows[i].begin(), rows[i].end(), m.row(i).begin());
  }
  return m;
}

// ---------------------------------------------------------------------------
// CompiledForest — validation
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::runtime_error("compiled model invalid: " + what);
}

/// First index of the strictly largest value — std::max_element semantics,
/// which is what every legacy predict() tie-break uses.
std::size_t argmax(std::span<const double> v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

/// Byte-for-byte the same computation as gbdt.cpp's softmax_inplace.
void softmax_span(std::span<double> scores) {
  const double mx = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (auto& s : scores) {
    s = std::exp(s - mx);
    total += s;
  }
  for (auto& s : scores) s /= total;
}

}  // namespace

CompiledForest::CompiledForest(Data data) : d_(std::move(data)) {
  const std::size_t n = d_.feature.size();
  if (n == 0) invalid("no nodes");
  if (d_.num_classes < 1) invalid("num_classes must be >= 1");
  if (d_.num_features < 1) invalid("num_features must be >= 1");
  if (d_.threshold.size() != n || d_.left.size() != n || d_.right.size() != n) {
    invalid("node arrays disagree in length");
  }
  if (d_.tree_first.size() < 2) invalid("needs at least one tree");
  if (d_.tree_first.front() != 0 ||
      d_.tree_first.back() != static_cast<std::int32_t>(n)) {
    invalid("tree_first must span the node arrays");
  }
  const int expected_width =
      d_.kind == ModelKind::kGbdt ? 1 : d_.num_classes;
  if (d_.leaf_width != expected_width) {
    invalid("leaf_width inconsistent with kind/num_classes");
  }
  if (d_.leaf_data.size() %
          static_cast<std::size_t>(d_.leaf_width) != 0) {
    invalid("leaf_data length not a multiple of leaf_width");
  }
  const auto leaves = static_cast<std::int32_t>(leaf_count());
  if (d_.leaf_label.size() != leaf_count()) {
    invalid("leaf_label length must equal the leaf count");
  }
  if (d_.kind == ModelKind::kDtc && num_trees() != 1) {
    invalid("DTC must contain exactly one tree");
  }
  if (d_.kind == ModelKind::kGbdt) {
    if (d_.learning_rate <= 0.0) invalid("GBDT learning_rate must be > 0");
    if (d_.base_score.size() != static_cast<std::size_t>(d_.num_classes)) {
      invalid("GBDT base_score must have num_classes entries");
    }
    if (num_trees() % static_cast<std::size_t>(d_.num_classes) != 0) {
      invalid("GBDT tree count must be a multiple of num_classes");
    }
  } else if (!d_.base_score.empty()) {
    invalid("base_score is only valid for GBDT");
  }
  for (std::size_t t = 0; t + 1 < d_.tree_first.size(); ++t) {
    const std::int32_t lo = d_.tree_first[t];
    const std::int32_t hi = d_.tree_first[t + 1];
    if (lo >= hi) invalid("tree_first must be strictly increasing");
    for (std::int32_t i = lo; i < hi; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (d_.feature[u] >= 0) {
        if (d_.feature[u] >= d_.num_features) {
          invalid("node feature index out of range");
        }
        // Children strictly after the parent and inside the same tree:
        // guarantees in-bounds reads and terminating walks.
        if (d_.left[u] <= i || d_.left[u] >= hi || d_.right[u] <= i ||
            d_.right[u] >= hi) {
          invalid("node child index out of range");
        }
      } else {
        if (d_.left[u] < 0 || d_.left[u] >= leaves) {
          invalid("leaf index out of range");
        }
        const std::int32_t label =
            d_.leaf_label[static_cast<std::size_t>(d_.left[u])];
        if (label < 0 || label >= d_.num_classes) {
          invalid("leaf label out of range");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Compilation from the trained models
// ---------------------------------------------------------------------------

namespace {

/// Append one classifier tree; leaf probability rows are padded to
/// `num_classes` with zeros (bootstrap subsets can miss trailing classes —
/// adding 0.0 to the running sums is bit-identical to skipping them).
void append_classifier_tree(CompiledForest::Data& d,
                            const std::vector<TreeNode>& nodes,
                            const std::vector<std::vector<double>>& proba,
                            int num_classes) {
  const auto base = static_cast<std::int32_t>(d.feature.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& nd = nodes[i];
    d.threshold.push_back(nd.threshold);
    if (nd.feature >= 0) {
      d.feature.push_back(nd.feature);
      d.left.push_back(base + nd.left);
      d.right.push_back(base + nd.right);
      d.num_features = std::max(d.num_features, nd.feature + 1);
    } else {
      d.feature.push_back(-1);
      d.left.push_back(static_cast<std::int32_t>(d.leaf_label.size()));
      d.right.push_back(-1);
      d.leaf_label.push_back(nd.label);
      for (int c = 0; c < num_classes; ++c) {
        const auto uc = static_cast<std::size_t>(c);
        d.leaf_data.push_back(uc < proba[i].size() ? proba[i][uc] : 0.0);
      }
    }
  }
  d.tree_first.push_back(static_cast<std::int32_t>(d.feature.size()));
}

void append_regression_tree(CompiledForest::Data& d,
                            const std::vector<TreeNode>& nodes) {
  const auto base = static_cast<std::int32_t>(d.feature.size());
  for (const TreeNode& nd : nodes) {
    d.threshold.push_back(nd.threshold);
    if (nd.feature >= 0) {
      d.feature.push_back(nd.feature);
      d.left.push_back(base + nd.left);
      d.right.push_back(base + nd.right);
      d.num_features = std::max(d.num_features, nd.feature + 1);
    } else {
      d.feature.push_back(-1);
      d.left.push_back(static_cast<std::int32_t>(d.leaf_label.size()));
      d.right.push_back(-1);
      d.leaf_label.push_back(0);
      d.leaf_data.push_back(nd.value);
    }
  }
  d.tree_first.push_back(static_cast<std::int32_t>(d.feature.size()));
}

}  // namespace

CompiledForest CompiledForest::compile(const DecisionTreeClassifier& tree) {
  COCG_EXPECTS_MSG(tree.trained(), "compile before fit");
  Data d;
  d.kind = ModelKind::kDtc;
  d.num_classes = tree.num_classes();
  d.leaf_width = d.num_classes;
  d.num_features = 1;
  d.tree_first.push_back(0);
  append_classifier_tree(d, tree.nodes(), tree.leaf_probabilities(),
                         d.num_classes);
  return CompiledForest(std::move(d));
}

CompiledForest CompiledForest::compile(const RandomForestClassifier& forest) {
  COCG_EXPECTS_MSG(forest.trained(), "compile before fit");
  Data d;
  d.kind = ModelKind::kRf;
  d.num_classes = forest.num_classes();
  d.leaf_width = d.num_classes;
  d.num_features = 1;
  d.tree_first.push_back(0);
  for (const auto& tree : forest.trees()) {
    append_classifier_tree(d, tree.nodes(), tree.leaf_probabilities(),
                           d.num_classes);
  }
  return CompiledForest(std::move(d));
}

CompiledForest CompiledForest::compile(const GbdtClassifier& gbdt) {
  COCG_EXPECTS_MSG(gbdt.trained(), "compile before fit");
  Data d;
  d.kind = ModelKind::kGbdt;
  d.num_classes = gbdt.num_classes();
  d.leaf_width = 1;
  d.num_features = 1;
  d.learning_rate = gbdt.config().learning_rate;
  d.base_score = gbdt.base_scores();
  d.tree_first.push_back(0);
  // Round-major, class-minor: tree t corrects class t % K, in exactly the
  // accumulation order of GbdtClassifier::raw_scores.
  for (const auto& round : gbdt.trees()) {
    for (const auto& tree : round) append_regression_tree(d, tree.nodes());
  }
  return CompiledForest(std::move(d));
}

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

std::size_t CompiledForest::walk(std::size_t tree,
                                 std::span<const double> x) const {
  auto i = static_cast<std::size_t>(d_.tree_first[tree]);
  while (d_.feature[i] >= 0) {
    i = static_cast<std::size_t>(
        x[static_cast<std::size_t>(d_.feature[i])] <= d_.threshold[i]
            ? d_.left[i]
            : d_.right[i]);
  }
  return static_cast<std::size_t>(d_.left[i]);
}

void CompiledForest::predict_proba_into(std::span<const double> x,
                                        std::span<double> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(x.size() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  COCG_EXPECTS(out.size() == k);
  const std::size_t trees = num_trees();
  switch (d_.kind) {
    case ModelKind::kDtc: {
      const std::size_t leaf = walk(0, x);
      for (std::size_t c = 0; c < k; ++c) {
        out[c] = d_.leaf_data[leaf * k + c];
      }
      break;
    }
    case ModelKind::kRf: {
      for (std::size_t c = 0; c < k; ++c) out[c] = 0.0;
      for (std::size_t t = 0; t < trees; ++t) {
        const std::size_t leaf = walk(t, x);
        for (std::size_t c = 0; c < k; ++c) {
          out[c] += d_.leaf_data[leaf * k + c];
        }
      }
      for (std::size_t c = 0; c < k; ++c) {
        out[c] /= static_cast<double>(trees);
      }
      break;
    }
    case ModelKind::kGbdt: {
      for (std::size_t c = 0; c < k; ++c) out[c] = d_.base_score[c];
      for (std::size_t t = 0; t < trees; ++t) {
        out[t % k] += d_.learning_rate * d_.leaf_data[walk(t, x)];
      }
      softmax_span(out);
      break;
    }
  }
}

std::vector<double> CompiledForest::predict_proba(
    std::span<const double> x) const {
  std::vector<double> out(static_cast<std::size_t>(d_.num_classes));
  predict_proba_into(x, out);
  return out;
}

int CompiledForest::predict(std::span<const double> x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(x.size() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  switch (d_.kind) {
    case ModelKind::kDtc:
      return d_.leaf_label[walk(0, x)];
    case ModelKind::kRf: {
      std::vector<double> votes(k, 0.0);
      for (std::size_t t = 0; t < num_trees(); ++t) {
        votes[static_cast<std::size_t>(d_.leaf_label[walk(t, x)])] += 1.0;
      }
      return static_cast<int>(argmax(votes));
    }
    case ModelKind::kGbdt: {
      std::vector<double> s(d_.base_score.begin(), d_.base_score.end());
      for (std::size_t t = 0; t < num_trees(); ++t) {
        s[t % k] += d_.learning_rate * d_.leaf_data[walk(t, x)];
      }
      return static_cast<int>(argmax(s));
    }
  }
  return 0;
}

void CompiledForest::walk_lanes(std::size_t tree, const FeatureMatrix& xs,
                                std::size_t row0, std::size_t count,
                                std::size_t* leaves) const {
  // All lanes start at the tree root and step together; a lane that
  // reaches its leaf keeps testing feature[i] < 0 (cheap, no memory
  // traffic beyond the node row already in cache) until the slowest lane
  // finishes. The win is instruction-level: eight independent
  // load->compare->select chains in flight instead of one.
  std::size_t idx[kLaneWidth];
  const auto first = static_cast<std::size_t>(d_.tree_first[tree]);
  for (std::size_t l = 0; l < count; ++l) idx[l] = first;
  bool walking = true;
  while (walking) {
    walking = false;
    for (std::size_t l = 0; l < count; ++l) {
      const std::size_t i = idx[l];
      const std::int32_t f = d_.feature[i];
      if (f >= 0) {
        const double x = xs.row(row0 + l)[static_cast<std::size_t>(f)];
        idx[l] = static_cast<std::size_t>(
            x <= d_.threshold[i] ? d_.left[i] : d_.right[i]);
        walking = true;
      }
    }
  }
  for (std::size_t l = 0; l < count; ++l) {
    leaves[l] = static_cast<std::size_t>(d_.left[idx[l]]);
  }
}

void CompiledForest::accumulate_simd(const FeatureMatrix& xs,
                                     std::span<double> acc, bool votes) const {
  // Same tree-outer / row-inner order as accumulate(): within a lane block
  // the leaves are applied in ascending-row order, so every per-(row,class)
  // sum sees its addends in the identical sequence.
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  std::size_t leaves[kLaneWidth];
  for (std::size_t t = 0; t < num_trees(); ++t) {
    const std::size_t gbdt_class = t % k;
    for (std::size_t r0 = 0; r0 < n; r0 += kLaneWidth) {
      const std::size_t count = std::min(kLaneWidth, n - r0);
      walk_lanes(t, xs, r0, count, leaves);
      for (std::size_t l = 0; l < count; ++l) {
        const std::size_t r = r0 + l;
        const std::size_t leaf = leaves[l];
        switch (d_.kind) {
          case ModelKind::kRf:
            if (votes) {
              acc[r * k + static_cast<std::size_t>(d_.leaf_label[leaf])] +=
                  1.0;
            } else {
              for (std::size_t c = 0; c < k; ++c) {
                acc[r * k + c] += d_.leaf_data[leaf * k + c];
              }
            }
            break;
          case ModelKind::kGbdt:
            acc[r * k + gbdt_class] += d_.learning_rate * d_.leaf_data[leaf];
            break;
          case ModelKind::kDtc:
            break;  // handled by the callers directly
        }
      }
    }
  }
}

void CompiledForest::accumulate(const FeatureMatrix& xs,
                                std::span<double> acc, bool votes) const {
  // Tree-outer, row-inner: each tree's node arrays stay cache-resident
  // while the rows stream past. The per-(row, class) accumulation order is
  // still "trees ascending", identical to the scalar walk.
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  for (std::size_t t = 0; t < num_trees(); ++t) {
    const std::size_t gbdt_class = t % k;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t leaf = walk(t, xs.row(r));
      switch (d_.kind) {
        case ModelKind::kRf:
          if (votes) {
            acc[r * k + static_cast<std::size_t>(d_.leaf_label[leaf])] += 1.0;
          } else {
            for (std::size_t c = 0; c < k; ++c) {
              acc[r * k + c] += d_.leaf_data[leaf * k + c];
            }
          }
          break;
        case ModelKind::kGbdt:
          acc[r * k + gbdt_class] += d_.learning_rate * d_.leaf_data[leaf];
          break;
        case ModelKind::kDtc:
          break;  // handled by the callers directly
      }
    }
  }
}

void CompiledForest::predict_proba_batch(const FeatureMatrix& xs,
                                         std::span<double> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(xs.cols() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  COCG_EXPECTS_MSG(out.size() == n * k,
                   "predict_proba_batch: out needs rows()*num_classes slots");
  switch (d_.kind) {
    case ModelKind::kDtc:
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t leaf = walk(0, xs.row(r));
        for (std::size_t c = 0; c < k; ++c) {
          out[r * k + c] = d_.leaf_data[leaf * k + c];
        }
      }
      break;
    case ModelKind::kRf: {
      std::fill(out.begin(), out.end(), 0.0);
      accumulate(xs, out, /*votes=*/false);
      const auto trees = static_cast<double>(num_trees());
      for (auto& v : out) v /= trees;
      break;
    }
    case ModelKind::kGbdt: {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
          out[r * k + c] = d_.base_score[c];
        }
      }
      accumulate(xs, out, /*votes=*/false);
      for (std::size_t r = 0; r < n; ++r) {
        softmax_span(out.subspan(r * k, k));
      }
      break;
    }
  }
}

void CompiledForest::predict_batch(const FeatureMatrix& xs,
                                   std::span<int> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(xs.cols() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  COCG_EXPECTS_MSG(out.size() == n,
                   "predict_batch: out needs rows() slots");
  if (d_.kind == ModelKind::kDtc) {
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = d_.leaf_label[walk(0, xs.row(r))];
    }
    return;
  }
  // One scratch accumulator per call; no per-row allocation.
  std::vector<double> acc(n * k, 0.0);
  if (d_.kind == ModelKind::kGbdt) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < k; ++c) acc[r * k + c] = d_.base_score[c];
    }
  }
  accumulate(xs, acc, /*votes=*/d_.kind == ModelKind::kRf);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = static_cast<int>(
        argmax(std::span<const double>(acc.data() + r * k, k)));
  }
}

void CompiledForest::predict_proba_batch_simd(const FeatureMatrix& xs,
                                              std::span<double> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(xs.cols() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  COCG_EXPECTS_MSG(out.size() == n * k,
                   "predict_proba_batch_simd: out needs rows()*num_classes");
  switch (d_.kind) {
    case ModelKind::kDtc: {
      std::size_t leaves[kLaneWidth];
      for (std::size_t r0 = 0; r0 < n; r0 += kLaneWidth) {
        const std::size_t count = std::min(kLaneWidth, n - r0);
        walk_lanes(0, xs, r0, count, leaves);
        for (std::size_t l = 0; l < count; ++l) {
          for (std::size_t c = 0; c < k; ++c) {
            out[(r0 + l) * k + c] = d_.leaf_data[leaves[l] * k + c];
          }
        }
      }
      break;
    }
    case ModelKind::kRf: {
      std::fill(out.begin(), out.end(), 0.0);
      accumulate_simd(xs, out, /*votes=*/false);
      const auto trees = static_cast<double>(num_trees());
      for (auto& v : out) v /= trees;
      break;
    }
    case ModelKind::kGbdt: {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
          out[r * k + c] = d_.base_score[c];
        }
      }
      accumulate_simd(xs, out, /*votes=*/false);
      for (std::size_t r = 0; r < n; ++r) {
        softmax_span(out.subspan(r * k, k));
      }
      break;
    }
  }
}

void CompiledForest::predict_batch_simd(const FeatureMatrix& xs,
                                        std::span<int> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  COCG_EXPECTS(xs.cols() >= static_cast<std::size_t>(d_.num_features));
  const auto k = static_cast<std::size_t>(d_.num_classes);
  const std::size_t n = xs.rows();
  COCG_EXPECTS_MSG(out.size() == n,
                   "predict_batch_simd: out needs rows() slots");
  if (d_.kind == ModelKind::kDtc) {
    std::size_t leaves[kLaneWidth];
    for (std::size_t r0 = 0; r0 < n; r0 += kLaneWidth) {
      const std::size_t count = std::min(kLaneWidth, n - r0);
      walk_lanes(0, xs, r0, count, leaves);
      for (std::size_t l = 0; l < count; ++l) {
        out[r0 + l] = d_.leaf_label[leaves[l]];
      }
    }
    return;
  }
  std::vector<double> acc(n * k, 0.0);
  if (d_.kind == ModelKind::kGbdt) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < k; ++c) acc[r * k + c] = d_.base_score[c];
    }
  }
  accumulate_simd(xs, acc, /*votes=*/d_.kind == ModelKind::kRf);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = static_cast<int>(
        argmax(std::span<const double>(acc.data() + r * k, k)));
  }
}

}  // namespace cocg::ml
