// Pointer-free compiled inference artifacts (train once, share everywhere).
//
// CompiledForest is the common post-`fit` representation of the three
// predictor algorithms (DTC / RF / GBDT): every tree flattened into
// contiguous feature/threshold/child arrays plus a flat leaf-payload table,
// so the hot path is an index walk over a few vectors instead of pointer
// chasing through per-model node structures. Predictions are bit-identical
// to the original tree walks (tests/ml/test_compiled.cpp enforces this),
// and the batched entry points do zero per-row heap allocation.
//
// The artifact is also the serialization unit (ml/model_io.h) and the
// sharing unit: the core ModelBank hands the same immutable CompiledForest
// to every session and fleet shard that plays the same game.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace cocg::ml {

class DecisionTreeClassifier;
class RandomForestClassifier;
class GbdtClassifier;

enum class ModelKind { kDtc, kRf, kGbdt };

const char* model_kind_name(ModelKind kind);
/// Inverse of model_kind_name; returns false on unknown names.
bool parse_model_kind(const std::string& name, ModelKind& out);

/// Dense row-major feature matrix for batched inference: one contiguous
/// buffer instead of a vector of per-row vectors.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::size_t rows, std::size_t cols);
  static FeatureMatrix from_rows(const std::vector<FeatureRow>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

class CompiledForest {
 public:
  /// Structure-of-arrays payload. `feature[i] < 0` marks node i a leaf
  /// whose `left` field indexes the leaf table; internal nodes' left/right
  /// are absolute node indices, always greater than the parent's index, so
  /// every walk terminates. Trees are concatenated; tree t occupies nodes
  /// [tree_first[t], tree_first[t+1]). For GBDT the trees are stored
  /// round-major (tree t corrects class t % num_classes), matching the
  /// boosting accumulation order exactly.
  struct Data {
    ModelKind kind = ModelKind::kDtc;
    int num_classes = 0;
    int num_features = 0;        ///< minimum feature-row width accepted
    int leaf_width = 0;          ///< doubles per leaf-table row
    double learning_rate = 0.0;  ///< GBDT shrinkage; unused otherwise
    std::vector<double> base_score;        ///< GBDT log prior; else empty
    std::vector<std::int32_t> tree_first;  ///< size num_trees + 1
    std::vector<std::int32_t> feature;
    std::vector<double> threshold;
    std::vector<std::int32_t> left;
    std::vector<std::int32_t> right;
    std::vector<std::int32_t> leaf_label;  ///< classifier majority class
    std::vector<double> leaf_data;  ///< leaf_width-stride payload rows
  };

  CompiledForest() = default;
  /// Validates every shape and index invariant; throws std::runtime_error
  /// naming the offending field, so deserialization cannot produce an
  /// artifact whose walks read out of bounds or fail to terminate.
  explicit CompiledForest(Data data);

  static CompiledForest compile(const DecisionTreeClassifier& tree);
  static CompiledForest compile(const RandomForestClassifier& forest);
  static CompiledForest compile(const GbdtClassifier& gbdt);

  bool trained() const { return !d_.feature.empty(); }
  ModelKind kind() const { return d_.kind; }
  int num_classes() const { return d_.num_classes; }
  int num_features() const { return d_.num_features; }
  std::size_t num_trees() const {
    return d_.tree_first.empty() ? 0 : d_.tree_first.size() - 1;
  }
  std::size_t node_count() const { return d_.feature.size(); }
  std::size_t leaf_count() const {
    return d_.leaf_width == 0 ? 0
                              : d_.leaf_data.size() /
                                    static_cast<std::size_t>(d_.leaf_width);
  }
  const Data& data() const { return d_; }

  // Scalar entry points (thin wrappers over the allocation-free kernels).
  int predict(std::span<const double> x) const;
  std::vector<double> predict_proba(std::span<const double> x) const;
  /// Allocation-free scalar probability; `out` needs num_classes slots.
  void predict_proba_into(std::span<const double> x,
                          std::span<double> out) const;

  /// Batched class prediction; `out` needs xs.rows() slots. No per-row
  /// heap allocation (one scratch accumulator per call for RF/GBDT).
  void predict_batch(const FeatureMatrix& xs, std::span<int> out) const;
  /// Batched probabilities, row-major with stride num_classes; `out`
  /// needs xs.rows() * num_classes slots. Zero heap allocation.
  void predict_proba_batch(const FeatureMatrix& xs,
                           std::span<double> out) const;

  /// Lane-blocked variants: per tree, kLaneWidth independent row walks
  /// advance in lockstep so the node-chase loads of different rows overlap
  /// instead of serializing on one dependency chain. Every per-(row,class)
  /// accumulation happens in exactly the order of the serial batch path,
  /// so outputs are bit-identical to predict_batch / predict_proba_batch
  /// (tests/ml enforces it).
  static constexpr std::size_t kLaneWidth = 8;
  void predict_batch_simd(const FeatureMatrix& xs, std::span<int> out) const;
  void predict_proba_batch_simd(const FeatureMatrix& xs,
                                std::span<double> out) const;

 private:
  /// Walk one tree; returns the reached leaf's leaf-table row index.
  std::size_t walk(std::size_t tree, std::span<const double> x) const;
  /// Walk `count` (<= kLaneWidth) consecutive rows through one tree in
  /// lockstep; writes each row's leaf-table index into `leaves`.
  void walk_lanes(std::size_t tree, const FeatureMatrix& xs, std::size_t row0,
                  std::size_t count, std::size_t* leaves) const;
  /// Per-class accumulation shared by the proba/label paths: RF leaf-proba
  /// sums or GBDT raw scores into `acc` (rows * num_classes, row-major).
  void accumulate(const FeatureMatrix& xs, std::span<double> acc,
                  bool votes) const;
  /// Lane-blocked accumulate; same accumulation order, same results.
  void accumulate_simd(const FeatureMatrix& xs, std::span<double> acc,
                       bool votes) const;

  Data d_;
};

}  // namespace cocg::ml
