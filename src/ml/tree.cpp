#include "ml/tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace cocg::ml {

namespace {

/// Choose which feature columns to examine at a node.
std::vector<std::size_t> candidate_features(std::size_t n_features,
                                            std::size_t max_features,
                                            Rng* rng) {
  std::vector<std::size_t> feats(n_features);
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  if (max_features == 0 || max_features >= n_features || rng == nullptr) {
    return feats;
  }
  rng->shuffle(feats.begin(), feats.end());
  feats.resize(max_features);
  std::sort(feats.begin(), feats.end());  // deterministic scan order
  return feats;
}

struct SplitChoice {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::max();  // lower is better
};

}  // namespace

// ---------------------------------------------------------------------------
// DecisionTreeClassifier
// ---------------------------------------------------------------------------

struct DecisionTreeClassifier::BuildCtx {
  const Dataset* data = nullptr;
  Rng* rng = nullptr;
  int num_classes = 0;
};

namespace {

double gini_from_counts(const std::vector<std::size_t>& counts,
                        std::size_t total) {
  if (total == 0) return 0.0;
  double acc = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    acc -= p * p;
  }
  return acc;
}

/// Best Gini split over the given rows/features. Sorted-scan per feature.
SplitChoice best_gini_split(const Dataset& data,
                            const std::vector<std::size_t>& idx,
                            const std::vector<std::size_t>& feats,
                            int num_classes, std::size_t min_leaf) {
  SplitChoice best;
  const std::size_t n = idx.size();
  std::vector<std::size_t> order(idx);

  for (std::size_t f : feats) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.x(a)[f] < data.x(b)[f];
    });
    std::vector<std::size_t> left_counts(
        static_cast<std::size_t>(num_classes), 0);
    std::vector<std::size_t> right_counts(
        static_cast<std::size_t>(num_classes), 0);
    for (std::size_t i : order) {
      ++right_counts[static_cast<std::size_t>(data.y(i))];
    }
    // Move rows one by one from right to left; a split between position i-1
    // and i is valid when the feature value strictly increases there.
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t moved = order[i - 1];
      const auto cls = static_cast<std::size_t>(data.y(moved));
      ++left_counts[cls];
      --right_counts[cls];
      const double lo = data.x(order[i - 1])[f];
      const double hi = data.x(order[i])[f];
      if (lo >= hi) continue;  // tied values cannot be separated
      if (i < min_leaf || n - i < min_leaf) continue;
      const double gini =
          (static_cast<double>(i) * gini_from_counts(left_counts, i) +
           static_cast<double>(n - i) * gini_from_counts(right_counts, n - i)) /
          static_cast<double>(n);
      if (gini < best.score) {
        best.found = true;
        best.feature = f;
        best.threshold = lo + (hi - lo) / 2.0;
        best.score = gini;
      }
    }
  }
  return best;
}

}  // namespace

void DecisionTreeClassifier::fit(const Dataset& data) {
  Rng unused(0);
  TreeConfig saved = cfg_;
  cfg_.max_features = 0;
  fit(data, unused);
  cfg_ = saved;
}

void DecisionTreeClassifier::fit(const Dataset& data, Rng& rng) {
  COCG_EXPECTS_MSG(!data.empty(), "cannot fit an empty dataset");
  nodes_.clear();
  leaf_proba_.clear();
  num_classes_ = data.num_classes();

  BuildCtx ctx;
  ctx.data = &data;
  ctx.rng = &rng;
  ctx.num_classes = num_classes_;

  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  build(ctx, idx, 0);
}

int DecisionTreeClassifier::build(BuildCtx& ctx, std::vector<std::size_t>& idx,
                                  int depth) {
  const Dataset& data = *ctx.data;
  const std::size_t n = idx.size();
  COCG_CHECK(n > 0);

  // Class histogram of this node.
  std::vector<std::size_t> counts(static_cast<std::size_t>(ctx.num_classes),
                                  0);
  for (std::size_t i : idx) ++counts[static_cast<std::size_t>(data.y(i))];
  const auto majority = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const bool pure =
      counts[static_cast<std::size_t>(majority)] == n;

  const int me = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  leaf_proba_.emplace_back();
  nodes_[static_cast<std::size_t>(me)].label = majority;
  nodes_[static_cast<std::size_t>(me)].n_samples = n;

  auto make_leaf = [&] {
    auto& proba = leaf_proba_[static_cast<std::size_t>(me)];
    proba.resize(static_cast<std::size_t>(ctx.num_classes));
    for (std::size_t c = 0; c < counts.size(); ++c) {
      proba[c] = static_cast<double>(counts[c]) / static_cast<double>(n);
    }
    return me;
  };

  if (pure || depth >= cfg_.max_depth || n < cfg_.min_samples_split) {
    return make_leaf();
  }

  const auto feats = candidate_features(data.num_features(),
                                        cfg_.max_features, ctx.rng);
  const SplitChoice split = best_gini_split(data, idx, feats, ctx.num_classes,
                                            cfg_.min_samples_leaf);
  if (!split.found) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  left_idx.reserve(n);
  right_idx.reserve(n);
  for (std::size_t i : idx) {
    (data.x(i)[split.feature] <= split.threshold ? left_idx : right_idx)
        .push_back(i);
  }
  COCG_CHECK(!left_idx.empty() && !right_idx.empty());
  idx.clear();
  idx.shrink_to_fit();

  nodes_[static_cast<std::size_t>(me)].feature =
      static_cast<int>(split.feature);
  nodes_[static_cast<std::size_t>(me)].threshold = split.threshold;
  const int l = build(ctx, left_idx, depth + 1);
  const int r = build(ctx, right_idx, depth + 1);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

int DecisionTreeClassifier::predict(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto& nd = nodes_[node];
    COCG_EXPECTS(static_cast<std::size_t>(nd.feature) < x.size());
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                : nd.right);
  }
  return nodes_[node].label;
}

std::vector<int> DecisionTreeClassifier::predict_all(
    const std::vector<FeatureRow>& xs) const {
  std::vector<int> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(predict(x));
  return out;
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto& nd = nodes_[node];
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                : nd.right);
  }
  return leaf_proba_[node];
}

int DecisionTreeClassifier::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flattened structure.
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int mx = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    mx = std::max(mx, d);
    if (nodes_[node].feature >= 0) {
      stack.push_back({static_cast<std::size_t>(nodes_[node].left), d + 1});
      stack.push_back({static_cast<std::size_t>(nodes_[node].right), d + 1});
    }
  }
  return mx;
}

// ---------------------------------------------------------------------------
// RegressionTree
// ---------------------------------------------------------------------------

struct RegressionTree::BuildCtx {
  const std::vector<FeatureRow>* x = nullptr;
  const std::vector<double>* y = nullptr;
};

namespace {

/// Best variance-reduction split using prefix sums over sorted values.
SplitChoice best_mse_split(const std::vector<FeatureRow>& x,
                           const std::vector<double>& y,
                           const std::vector<std::size_t>& idx,
                           std::size_t min_leaf) {
  SplitChoice best;
  const std::size_t n = idx.size();
  const std::size_t n_features = x[0].size();
  std::vector<std::size_t> order(idx);

  // A split must actually reduce the node's squared error; otherwise the
  // node stays a leaf (constant targets would "split" at error 0 == 0).
  {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t i : idx) {
      sum += y[i];
      sum2 += y[i] * y[i];
    }
    const double parent_err = sum2 - sum * sum / static_cast<double>(n);
    best.score = parent_err - 1e-12;
  }

  for (std::size_t f = 0; f < n_features; ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return x[a][f] < x[b][f];
    });
    double right_sum = 0.0, right_sum2 = 0.0;
    for (std::size_t i : order) {
      right_sum += y[i];
      right_sum2 += y[i] * y[i];
    }
    double left_sum = 0.0, left_sum2 = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
      const double yi = y[order[i - 1]];
      left_sum += yi;
      left_sum2 += yi * yi;
      right_sum -= yi;
      right_sum2 -= yi * yi;
      const double lo = x[order[i - 1]][f];
      const double hi = x[order[i]][f];
      if (lo >= hi) continue;
      if (i < min_leaf || n - i < min_leaf) continue;
      const auto nl = static_cast<double>(i);
      const auto nr = static_cast<double>(n - i);
      // Total within-node squared error = Σy² − (Σy)²/n on each side.
      const double err =
          (left_sum2 - left_sum * left_sum / nl) +
          (right_sum2 - right_sum * right_sum / nr);
      if (err < best.score) {
        best.found = true;
        best.feature = f;
        best.threshold = lo + (hi - lo) / 2.0;
        best.score = err;
      }
    }
  }
  return best;
}

}  // namespace

void RegressionTree::fit(const std::vector<FeatureRow>& x,
                         const std::vector<double>& y) {
  COCG_EXPECTS(!x.empty());
  COCG_EXPECTS(x.size() == y.size());
  nodes_.clear();

  BuildCtx ctx;
  ctx.x = &x;
  ctx.y = &y;
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  build(ctx, idx, 0);
}

int RegressionTree::build(BuildCtx& ctx, std::vector<std::size_t>& idx,
                          int depth) {
  const auto& x = *ctx.x;
  const auto& y = *ctx.y;
  const std::size_t n = idx.size();
  COCG_CHECK(n > 0);

  double mean = 0.0;
  for (std::size_t i : idx) mean += y[i];
  mean /= static_cast<double>(n);

  const int me = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(me)].value = mean;
  nodes_[static_cast<std::size_t>(me)].n_samples = n;

  if (depth >= cfg_.max_depth || n < cfg_.min_samples_split) return me;

  const SplitChoice split = best_mse_split(x, y, idx, cfg_.min_samples_leaf);
  if (!split.found) return me;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (x[i][split.feature] <= split.threshold ? left_idx : right_idx)
        .push_back(i);
  }
  COCG_CHECK(!left_idx.empty() && !right_idx.empty());
  idx.clear();
  idx.shrink_to_fit();

  nodes_[static_cast<std::size_t>(me)].feature =
      static_cast<int>(split.feature);
  nodes_[static_cast<std::size_t>(me)].threshold = split.threshold;
  const int l = build(ctx, left_idx, depth + 1);
  const int r = build(ctx, right_idx, depth + 1);
  nodes_[static_cast<std::size_t>(me)].left = l;
  nodes_[static_cast<std::size_t>(me)].right = r;
  return me;
}

double RegressionTree::predict(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto& nd = nodes_[node];
    COCG_EXPECTS(static_cast<std::size_t>(nd.feature) < x.size());
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                : nd.right);
  }
  return nodes_[node].value;
}

}  // namespace cocg::ml
