#include "ml/model_io.h"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace cocg::ml {

namespace {

constexpr const char* kMagic = "cocg-model-v1";
constexpr const char* kVersionPrefix = "cocg-model-";

ModelKind parse_kind(const std::string& s, LineReader& r) {
  ModelKind kind{};
  if (!parse_model_kind(s, kind)) r.fail("unknown model kind '" + s + "'");
  return kind;
}

}  // namespace

void write_model(const CompiledForest& model, std::ostream& os) {
  if (!model.trained()) {
    throw std::runtime_error("write_model: model is untrained");
  }
  FullPrecision precision(os);
  const CompiledForest::Data& d = model.data();
  os << kMagic << '\n';
  os << "kind " << model_kind_name(d.kind) << '\n';
  os << "classes " << d.num_classes << '\n';
  os << "features " << d.num_features << '\n';
  os << "leaf_width " << d.leaf_width << '\n';
  os << "learning_rate " << d.learning_rate << '\n';
  os << "base_score " << d.base_score.size();
  for (double v : d.base_score) os << ' ' << v;
  os << '\n';
  os << "trees " << model.num_trees() << '\n';
  os << "tree_first";
  for (std::int32_t v : d.tree_first) os << ' ' << v;
  os << '\n';
  os << "nodes " << d.feature.size() << '\n';
  for (std::size_t i = 0; i < d.feature.size(); ++i) {
    os << "node " << d.feature[i] << ' ' << d.threshold[i] << ' ' << d.left[i]
       << ' ' << d.right[i] << '\n';
  }
  const std::size_t leaves = model.leaf_count();
  os << "leaves " << leaves << '\n';
  for (std::size_t i = 0; i < leaves; ++i) {
    os << "leaf " << d.leaf_label[i];
    for (int w = 0; w < d.leaf_width; ++w) {
      os << ' '
         << d.leaf_data[i * static_cast<std::size_t>(d.leaf_width) +
                        static_cast<std::size_t>(w)];
    }
    os << '\n';
  }
  os << "end-model" << '\n';
}

void save_model(const CompiledForest& model, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);
  write_model(model, out);
  if (!out) throw std::runtime_error("save_model: write failed " + path);
}

CompiledForest read_model(LineReader& r) {
  const std::string magic = r.line(kMagic);
  if (magic != kMagic) {
    if (magic.rfind(kVersionPrefix, 0) == 0) {
      r.fail("unsupported model format version '" + magic + "' (expected " +
             kMagic + ")");
    }
    r.fail("bad magic '" + magic + "' (expected " + std::string(kMagic) +
           ")");
  }
  CompiledForest::Data d;
  {
    auto ls = r.expect("kind ");
    d.kind = parse_kind(r.field<std::string>(ls, "kind"), r);
  }
  {
    auto ls = r.expect("classes ");
    d.num_classes = r.field<int>(ls, "classes");
  }
  {
    auto ls = r.expect("features ");
    d.num_features = r.field<int>(ls, "features");
  }
  {
    auto ls = r.expect("leaf_width ");
    d.leaf_width = r.field<int>(ls, "leaf_width");
    if (d.leaf_width <= 0) r.fail("leaf_width must be positive");
  }
  {
    auto ls = r.expect("learning_rate ");
    d.learning_rate = r.field<double>(ls, "learning_rate");
  }
  {
    auto ls = r.expect("base_score ");
    const auto n = r.field<std::size_t>(ls, "base_score count");
    d.base_score.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      d.base_score.push_back(r.field<double>(ls, "base_score value"));
    }
  }
  std::size_t n_trees = 0;
  {
    auto ls = r.expect("trees ");
    n_trees = r.field<std::size_t>(ls, "trees");
  }
  {
    auto ls = r.expect("tree_first");
    d.tree_first.reserve(n_trees + 1);
    for (std::size_t i = 0; i <= n_trees; ++i) {
      d.tree_first.push_back(r.field<std::int32_t>(ls, "tree_first value"));
    }
  }
  std::size_t n_nodes = 0;
  {
    auto ls = r.expect("nodes ");
    n_nodes = r.field<std::size_t>(ls, "nodes");
  }
  d.feature.reserve(n_nodes);
  d.threshold.reserve(n_nodes);
  d.left.reserve(n_nodes);
  d.right.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    auto ls = r.expect("node ");
    d.feature.push_back(r.field<std::int32_t>(ls, "node feature"));
    d.threshold.push_back(r.field<double>(ls, "node threshold"));
    d.left.push_back(r.field<std::int32_t>(ls, "node left"));
    d.right.push_back(r.field<std::int32_t>(ls, "node right"));
  }
  std::size_t n_leaves = 0;
  {
    auto ls = r.expect("leaves ");
    n_leaves = r.field<std::size_t>(ls, "leaves");
  }
  d.leaf_label.reserve(n_leaves);
  d.leaf_data.reserve(n_leaves * static_cast<std::size_t>(d.leaf_width));
  for (std::size_t i = 0; i < n_leaves; ++i) {
    auto ls = r.expect("leaf ");
    d.leaf_label.push_back(r.field<std::int32_t>(ls, "leaf label"));
    for (int w = 0; w < d.leaf_width; ++w) {
      d.leaf_data.push_back(r.field<double>(ls, "leaf value"));
    }
  }
  {
    const std::string end = r.line("end-model");
    if (end != "end-model") {
      r.fail("expected 'end-model', got '" + end + "'");
    }
  }
  try {
    return CompiledForest(std::move(d));
  } catch (const std::runtime_error& e) {
    r.fail(e.what());
  }
}

CompiledForest read_model(std::istream& is) {
  LineReader r(is, "model");
  return read_model(r);
}

CompiledForest load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  return read_model(in);
}

}  // namespace cocg::ml
