#include "ml/graph_cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/check.h"

namespace cocg::ml {

namespace {

/// Union-find with path compression.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

GraphClusterResult graph_cluster(const std::vector<Point>& points,
                                 const GraphClusterConfig& cfg) {
  COCG_EXPECTS(!points.empty());
  const std::size_t n = points.size();
  for (const auto& p : points) {
    COCG_EXPECTS_MSG(p.size() == points[0].size(),
                     "all points must share one width");
  }

  GraphClusterResult res;

  // Choose epsilon: fixed, or adaptive from nearest-neighbour distances.
  double eps = cfg.epsilon;
  if (eps <= 0.0) {
    std::vector<double> nn(n, std::numeric_limits<double>::max());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        nn[i] = std::min(nn[i], KMeans::dist_sq(points[i], points[j]));
      }
    }
    for (auto& d : nn) d = std::sqrt(d);
    std::nth_element(nn.begin(), nn.begin() + static_cast<std::ptrdiff_t>(n / 2),
                     nn.end());
    eps = cfg.adaptive_scale * nn[n / 2];
    if (eps <= 0.0) eps = 1e-9;
  }
  res.epsilon_used = eps;
  const double eps_sq = eps * eps;

  // Connect all pairs within epsilon.
  DisjointSet ds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (KMeans::dist_sq(points[i], points[j]) <= eps_sq) ds.unite(i, j);
    }
  }

  // Densify component ids.
  std::map<std::size_t, int> id_of_root;
  res.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = ds.find(i);
    auto [it, inserted] =
        id_of_root.emplace(root, static_cast<int>(id_of_root.size()));
    res.assignment[i] = it->second;
  }
  int k = static_cast<int>(id_of_root.size());

  // Merge tiny components into the nearest large one.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(k), 0);
  for (int c : res.assignment) ++sizes[static_cast<std::size_t>(c)];
  std::vector<Point> centroids(static_cast<std::size_t>(k),
                               Point(points[0].size(), 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < points[0].size(); ++d) {
      centroids[static_cast<std::size_t>(res.assignment[i])][d] +=
          points[i][d];
    }
  }
  for (int c = 0; c < k; ++c) {
    for (auto& v : centroids[static_cast<std::size_t>(c)]) {
      v /= static_cast<double>(sizes[static_cast<std::size_t>(c)]);
    }
  }
  bool any_big = false;
  for (int c = 0; c < k; ++c) {
    if (sizes[static_cast<std::size_t>(c)] >= cfg.min_cluster_size) {
      any_big = true;
    }
  }
  if (any_big) {
    std::vector<int> remap(static_cast<std::size_t>(k), -1);
    for (int c = 0; c < k; ++c) {
      if (sizes[static_cast<std::size_t>(c)] >= cfg.min_cluster_size) {
        continue;
      }
      // Nearest big centroid.
      int best = -1;
      double best_d = std::numeric_limits<double>::max();
      for (int o = 0; o < k; ++o) {
        if (sizes[static_cast<std::size_t>(o)] < cfg.min_cluster_size) {
          continue;
        }
        const double d = KMeans::dist_sq(
            centroids[static_cast<std::size_t>(c)],
            centroids[static_cast<std::size_t>(o)]);
        if (d < best_d) {
          best_d = d;
          best = o;
        }
      }
      remap[static_cast<std::size_t>(c)] = best;
    }
    for (auto& a : res.assignment) {
      const int m = remap[static_cast<std::size_t>(a)];
      if (m >= 0) a = m;
    }
  }

  // Re-densify ids after merging and recompute centroids.
  std::map<int, int> dense;
  for (auto& a : res.assignment) {
    auto [it, inserted] = dense.emplace(a, static_cast<int>(dense.size()));
    a = it->second;
  }
  res.num_clusters = static_cast<int>(dense.size());
  res.centroids.assign(static_cast<std::size_t>(res.num_clusters),
                       Point(points[0].size(), 0.0));
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(res.num_clusters), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(res.assignment[i]);
    ++counts[c];
    for (std::size_t d = 0; d < points[0].size(); ++d) {
      res.centroids[c][d] += points[i][d];
    }
  }
  for (std::size_t c = 0; c < res.centroids.size(); ++c) {
    for (auto& v : res.centroids[c]) v /= static_cast<double>(counts[c]);
  }
  return res;
}

double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b) {
  COCG_EXPECTS(a.size() == b.size());
  COCG_EXPECTS(!a.empty());
  const std::size_t n = a.size();

  std::map<std::pair<int, int>, double> cont;
  std::map<int, double> row, col;
  for (std::size_t i = 0; i < n; ++i) {
    cont[{a[i], b[i]}] += 1.0;
    row[a[i]] += 1.0;
    col[b[i]] += 1.0;
  }
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_cells = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [k, v] : cont) sum_cells += choose2(v);
  for (const auto& [k, v] : row) sum_rows += choose2(v);
  for (const auto& [k, v] : col) sum_cols += choose2(v);
  const double total = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total;
  const double max_index = (sum_rows + sum_cols) / 2.0;
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (max_index - expected);
}

}  // namespace cocg::ml
