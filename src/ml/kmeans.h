// K-means clustering with k-means++ seeding (§IV-A2, Fig. 5/6/14).
//
// The profiler clusters 5-second frame slices in normalized resource space;
// Fig. 14's elbow analysis (SSE vs K) drives the per-game choice of K.
#pragma once

#include <vector>

#include "common/rng.h"

namespace cocg::ml {

using Point = std::vector<double>;

struct KMeansResult {
  std::vector<Point> centroids;     ///< k centroids
  std::vector<int> assignment;      ///< per-input-point cluster index
  double sse = 0.0;                 ///< sum of squared distances to centroid
  int iterations = 0;               ///< Lloyd iterations executed
  bool converged = false;
};

struct KMeansConfig {
  int k = 2;
  int max_iterations = 100;
  double tolerance = 1e-7;  ///< stop when total centroid movement^2 < tol
  int restarts = 4;         ///< keep the best-SSE result over restarts
};

class KMeans {
 public:
  /// Cluster `points` (all rows the same width, k <= points.size()).
  static KMeansResult fit(const std::vector<Point>& points,
                          const KMeansConfig& cfg, Rng& rng);

  /// Nearest-centroid lookup for a new point.
  static int predict(const std::vector<Point>& centroids, const Point& p);

  /// SSE of a fixed assignment (exposed for tests).
  static double sse(const std::vector<Point>& points,
                    const std::vector<Point>& centroids,
                    const std::vector<int>& assignment);

  /// Squared Euclidean distance between equal-width points.
  static double dist_sq(const Point& a, const Point& b);
};

/// Fig. 14 helper: SSE for each K in [1, k_max], each fit independently.
std::vector<double> sse_curve(const std::vector<Point>& points, int k_max,
                              Rng& rng, int restarts = 4);

/// Pick the elbow of an SSE curve: the K (1-based) after which the relative
/// improvement drops below `min_gain` (default 10%).
int pick_elbow(const std::vector<double>& sse_by_k, double min_gain = 0.10);

}  // namespace cocg::ml
