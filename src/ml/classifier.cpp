#include "ml/classifier.h"

#include <stdexcept>
#include <string>

#include "common/check.h"

namespace cocg::ml {

int Classifier::predict(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  return compiled_->predict(x);
}

std::vector<double> Classifier::predict_proba(const FeatureRow& x) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  return compiled_->predict_proba(x);
}

std::vector<int> Classifier::predict_all(
    const std::vector<FeatureRow>& xs) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  std::vector<int> out(xs.size());
  const FeatureMatrix m = FeatureMatrix::from_rows(xs);
  compiled_->predict_batch(m, out);
  return out;
}

void Classifier::predict_batch(const FeatureMatrix& xs,
                               std::span<int> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  compiled_->predict_batch(xs, out);
}

void Classifier::predict_proba_batch(const FeatureMatrix& xs,
                                     std::span<double> out) const {
  COCG_EXPECTS_MSG(trained(), "predict before fit");
  compiled_->predict_proba_batch(xs, out);
}

void Classifier::restore(std::shared_ptr<const CompiledForest> forest) {
  if (forest == nullptr || !forest->trained()) {
    throw std::runtime_error("restore: null or untrained compiled model");
  }
  if (forest->kind() != kind()) {
    throw std::runtime_error(
        std::string("restore: model kind mismatch (artifact ") +
        model_kind_name(forest->kind()) + ", classifier " +
        model_kind_name(kind()) + ")");
  }
  compiled_ = std::move(forest);
}

void DtcModel::fit(const Dataset& data, Rng& rng) {
  impl_.fit(data, rng);
  compiled_ =
      std::make_shared<const CompiledForest>(CompiledForest::compile(impl_));
}

void RfModel::fit(const Dataset& data, Rng& rng) {
  impl_.fit(data, rng);
  compiled_ =
      std::make_shared<const CompiledForest>(CompiledForest::compile(impl_));
}

void GbdtModel::fit(const Dataset& data, Rng& rng) {
  impl_.fit(data, rng);
  compiled_ =
      std::make_shared<const CompiledForest>(CompiledForest::compile(impl_));
}

std::unique_ptr<Classifier> make_classifier(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDtc: {
      // A single CART of moderate depth — enough for script/stage logic,
      // not enough to memorize every player's personal task order.
      TreeConfig cfg;
      cfg.max_depth = 8;
      return std::make_unique<DtcModel>(cfg);
    }
    case ModelKind::kRf:
      return std::make_unique<RfModel>(RandomForestConfig{});
    case ModelKind::kGbdt: {
      // Deeper iteration: the paper notes GBDT "requires more in-depth
      // iteration" and stays accurate on complex titles.
      GbdtConfig cfg;
      cfg.n_rounds = 80;
      cfg.tree.max_depth = 6;
      return std::make_unique<GbdtModel>(cfg);
    }
  }
  return nullptr;
}

}  // namespace cocg::ml
