#include "ml/classifier.h"

namespace cocg::ml {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDtc: return "DTC";
    case ModelKind::kRf: return "RF";
    case ModelKind::kGbdt: return "GBDT";
  }
  return "?";
}

std::unique_ptr<Classifier> make_classifier(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDtc: {
      // A single CART of moderate depth — enough for script/stage logic,
      // not enough to memorize every player's personal task order.
      TreeConfig cfg;
      cfg.max_depth = 8;
      return std::make_unique<DtcModel>(cfg);
    }
    case ModelKind::kRf:
      return std::make_unique<RfModel>(RandomForestConfig{});
    case ModelKind::kGbdt: {
      // Deeper iteration: the paper notes GBDT "requires more in-depth
      // iteration" and stays accurate on complex titles.
      GbdtConfig cfg;
      cfg.n_rounds = 80;
      cfg.tree.max_depth = 6;
      return std::make_unique<GbdtModel>(cfg);
    }
  }
  return nullptr;
}

}  // namespace cocg::ml
