// Quickstart: profile a game, train its stage predictor, and run a CoCG
// co-location — the whole pipeline in ~100 lines.
//
//   $ ./quickstart
//
// Walks through: (1) offline profiling of Genshin Impact (clusters, stage
// catalog, predictor accuracy), (2) a 30-minute co-location of Genshin
// Impact and DOTA2 on one server under the CoCG scheduler, (3) throughput
// and QoS results.
#include <iostream>

#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

using namespace cocg;

int main() {
  // ------------------------------------------------------------------
  // 1. Offline: profile + train every game we intend to host.
  // ------------------------------------------------------------------
  std::cout << "=== offline profiling & training ===\n";
  const std::vector<game::GameSpec> suite = {game::make_genshin(),
                                             game::make_dota2()};
  core::OfflineConfig off;
  off.profiling_runs = 10;
  off.corpus_runs = 40;
  off.seed = 2024;
  auto models = core::train_suite(suite, off);

  for (const auto& [name, tg] : models) {
    std::cout << name << ": K=" << tg.chosen_k << " clusters, "
              << tg.profile->num_stage_types() << " stage types, "
              << "peak demand " << tg.profile->peak_demand.str()
              << ", predictor accuracy "
              << 100.0 * tg.predictor->accuracy() << "% ("
              << ml::model_kind_name(tg.predictor->model_kind()) << ")\n";
    for (const auto& st : tg.profile->stage_types) {
      std::cout << "  stage type " << st.id
                << (st.loading ? " [loading]" : " [execution]")
                << " clusters={";
      for (std::size_t i = 0; i < st.clusters.size(); ++i) {
        std::cout << (i ? "," : "") << st.clusters[i];
      }
      std::cout << "} peak gpu=" << st.peak_demand.gpu()
                << "% mean dwell=" << ms_to_sec(st.mean_duration_ms) << "s\n";
    }
  }

  // ------------------------------------------------------------------
  // 2. Online: co-locate Genshin Impact + DOTA2 under CoCG for 30 min.
  // ------------------------------------------------------------------
  std::cout << "\n=== co-location run (30 simulated minutes) ===\n";
  platform::PlatformConfig pcfg;
  pcfg.seed = 99;
  auto scheduler = std::make_unique<core::CocgScheduler>(std::move(models));
  platform::CloudPlatform cloud(pcfg, std::move(scheduler));

  hw::ServerSpec server;  // the paper's testbed: i7-7700 + 2x GTX 2080
  cloud.add_server(server);

  // Closed-loop sources: each game continuously re-requests.
  static const auto genshin = game::make_genshin();
  static const auto dota2 = game::make_dota2();
  cloud.add_source({&genshin, /*max_concurrent=*/1, /*player_pool=*/8});
  cloud.add_source({&dota2, /*max_concurrent=*/1, /*player_pool=*/8});

  cloud.run(30 * 60 * 1000);

  // ------------------------------------------------------------------
  // 3. Results.
  // ------------------------------------------------------------------
  std::cout << "completed runs: " << cloud.completed_runs().size()
            << ", still running: " << cloud.running_sessions()
            << ", queued: " << cloud.queued_requests() << "\n";
  for (const auto& [name, gs] : cloud.game_stats()) {
    std::cout << "  " << name << ": " << gs.completed << " runs, "
              << gs.total_duration_s << "s delivered, mean FPS ratio "
              << 100.0 * gs.mean_fps_ratio << "%, QoS violations "
              << gs.qos_violation_s << "s\n";
  }
  std::cout << "throughput T = " << cloud.throughput()
            << " game-seconds\n";
  return 0;
}
