// datacenter_sim — fleet-scale scheduling comparison.
//
//   $ ./datacenter_sim [servers] [minutes]
//
// A small cloud-gaming datacenter: N two-GPU servers serving a closed-loop
// mix of all five paper games (heavier pressure than one server can hold),
// scheduled by CoCG, GAugur and VBP in turn. Reports fleet throughput,
// completed runs per game, queue pressure, and QoS — the §IV-D scaling
// argument in action.
#include <functional>
#include <iostream>

#include "common/table.h"
#include "core/baselines.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct FleetResult {
  double throughput = 0.0;
  int completed = 0;
  std::size_t queued = 0;
  double qos_violation_s = 0.0;
  std::map<std::string, int> runs_per_game;
};

FleetResult run_fleet(std::unique_ptr<platform::Scheduler> sched,
                      int servers, DurationMs duration,
                      const std::vector<game::GameSpec>& suite) {
  platform::PlatformConfig pcfg;
  pcfg.seed = 20240705;
  platform::CloudPlatform cloud(pcfg, std::move(sched));
  for (int i = 0; i < servers; ++i) cloud.add_server(hw::ServerSpec{});
  // Demand mix: short games arrive in multiples, long games steadily.
  for (const auto& g : suite) {
    cloud.add_source({&g, g.short_game ? 3 * servers : servers, 16});
  }
  cloud.run(duration);

  FleetResult res;
  res.throughput = cloud.throughput();
  res.completed = static_cast<int>(cloud.completed_runs().size());
  res.queued = cloud.queued_requests();
  for (const auto& run : cloud.completed_runs()) {
    res.qos_violation_s += ms_to_sec(run.qos_violation_ms);
    ++res.runs_per_game[run.game];
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const int servers = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;
  const int minutes = argc > 2 ? std::max(5, std::atoi(argv[2])) : 60;

  static const std::vector<game::GameSpec> suite = game::paper_suite();
  std::cout << "Fleet: " << servers << " servers x 2 GPUs, "
            << minutes << " simulated minutes, all five games closed-loop.\n"
            << "Training models once...\n";
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 12;
  ocfg.corpus_runs = 60;
  ocfg.seed = 5150;

  TablePrinter table({"scheduler", "throughput", "completed runs", "queued",
                      "QoS violations (s)"});
  TablePrinter per_game({"scheduler", "DOTA2", "CSGO", "Genshin", "DMC",
                         "Contra"});

  using Maker =
      std::function<std::unique_ptr<platform::Scheduler>()>;
  const std::vector<std::pair<std::string, Maker>> schemes = {
      {"VBP",
       [&] {
         return std::make_unique<core::VbpScheduler>(
             core::train_suite(suite, ocfg));
       }},
      {"GAugur",
       [&] {
         return std::make_unique<core::GaugurScheduler>(
             core::train_suite(suite, ocfg));
       }},
      {"CoCG",
       [&] {
         return std::make_unique<core::CocgScheduler>(
             core::train_suite(suite, ocfg));
       }}};

  for (const auto& [name, make] : schemes) {
    const auto res = run_fleet(make(), servers,
                               static_cast<DurationMs>(minutes) * 60 * 1000,
                               suite);
    table.add_row({name, TablePrinter::fmt(res.throughput, 0),
                   std::to_string(res.completed),
                   std::to_string(res.queued),
                   TablePrinter::fmt(res.qos_violation_s, 0)});
    auto count = [&](const char* g) {
      auto it = res.runs_per_game.find(g);
      return std::to_string(it == res.runs_per_game.end() ? 0 : it->second);
    };
    per_game.add_row({name, count("DOTA2"), count("CSGO"),
                      count("Genshin Impact"), count("Devil May Cry"),
                      count("Contra")});
  }
  table.print(std::cout);
  std::cout << "completed runs per game:\n";
  per_game.print(std::cout);
  return 0;
}
