// heterogeneous_fleet — profile migration across SKUs in action (§IV-D).
//
//   $ ./heterogeneous_fleet [minutes]
//
// The operator profiled the games once, on the baseline testbed. A new
// rack of flagship servers (RTX-3090-class) arrives. Three deployments:
//
//   1. "migrated"   — baseline bundles migrated with migrate_trained_game
//                     (the paper's path: no retraining, one rescale);
//   2. "retrained"  — bundles freshly trained on the target SKU
//                     (the expensive ground truth);
//   3. "unmigrated" — baseline bundles used as-is (what naive reuse does).
//
// Migrated should match retrained; unmigrated over-allocates on the
// stronger SKU (its stage peaks are ~2x the real draw), wasting headroom.
#include <iostream>

#include "common/table.h"
#include "core/cocg_scheduler.h"
#include "core/migration.h"
#include "game/library.h"
#include "game/platform_scaling.h"
#include "platform/cloud_platform.h"

using namespace cocg;

namespace {

struct Outcome {
  double throughput = 0.0;
  double harvest_gpu_s = 0.0;
  double qos_violation_s = 0.0;
};

Outcome run_fleet(std::map<std::string, core::TrainedGame> models,
                  const std::vector<game::GameSpec>& fleet_suite,
                  const hw::ServerSpec& sku, DurationMs duration) {
  platform::PlatformConfig pcfg;
  pcfg.seed = 31337;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models)));
  cloud.add_server(sku);
  cloud.enable_harvest_accounting(true);
  for (const auto& g : fleet_suite) {
    cloud.add_source({&g, 1, 8});
  }
  cloud.run(duration);
  Outcome out;
  out.throughput = cloud.throughput();
  out.harvest_gpu_s = cloud.harvested_gpu_seconds();
  for (const auto& run : cloud.completed_runs()) {
    out.qos_violation_s += ms_to_sec(run.qos_violation_ms);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::max(5, std::atoi(argv[1])) : 45;
  const DurationMs duration = static_cast<DurationMs>(minutes) * 60 * 1000;

  static const std::vector<game::GameSpec> base_suite = game::paper_suite();
  const hw::ServerSpec target = hw::flagship_sku();
  // The same titles as they behave on the flagship SKU.
  static const std::vector<game::GameSpec> target_suite = [&] {
    std::vector<game::GameSpec> out;
    for (const auto& g : base_suite) {
      out.push_back(game::scale_for_platform(g, target));
    }
    return out;
  }();

  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 12;
  ocfg.corpus_runs = 50;
  ocfg.seed = 90210;

  std::cout << "Profiling once on the baseline testbed ("
            << hw::baseline_sku().name << ")...\n";
  auto base_models = core::train_suite(base_suite, ocfg);

  // 1. Migrate each bundle to the flagship SKU — no retraining.
  std::map<std::string, core::TrainedGame> migrated;
  for (auto& [name, tg] : base_models) {
    const game::GameSpec* scaled = nullptr;
    for (const auto& g : target_suite) {
      if (g.name == name) scaled = &g;
    }
    migrated.emplace(name,
                     core::migrate_trained_game(std::move(tg),
                                                hw::baseline_sku(), target,
                                                scaled));
  }

  // 2. Retrain from scratch on the target SKU (the expensive path).
  std::cout << "Retraining on the target SKU (" << target.name
            << ") for comparison...\n";
  auto retrained = core::train_suite(target_suite, ocfg);

  // 3. Unmigrated baseline bundles (point at the scaled specs so the
  //    scheduler can serve the fleet's requests, but keep the baseline
  //    resource numbers — the naive-reuse mistake).
  auto unmigrated = core::train_suite(base_suite, ocfg);
  for (auto& [name, tg] : unmigrated) {
    for (const auto& g : target_suite) {
      if (g.name == name) tg.spec = &g;
    }
  }

  TablePrinter table({"deployment", "throughput", "harvestable GPU-s",
                      "QoS violations (s)"});
  const auto mig = run_fleet(std::move(migrated), target_suite, target,
                             duration);
  const auto ret = run_fleet(std::move(retrained), target_suite, target,
                             duration);
  const auto raw = run_fleet(std::move(unmigrated), target_suite, target,
                             duration);
  table.add_row({"migrated (one rescale)",
                 TablePrinter::fmt(mig.throughput, 0),
                 TablePrinter::fmt(mig.harvest_gpu_s, 0),
                 TablePrinter::fmt(mig.qos_violation_s, 0)});
  table.add_row({"retrained on target",
                 TablePrinter::fmt(ret.throughput, 0),
                 TablePrinter::fmt(ret.harvest_gpu_s, 0),
                 TablePrinter::fmt(ret.qos_violation_s, 0)});
  table.add_row({"unmigrated baseline",
                 TablePrinter::fmt(raw.throughput, 0),
                 TablePrinter::fmt(raw.harvest_gpu_s, 0),
                 TablePrinter::fmt(raw.qos_violation_s, 0)});
  table.print(std::cout);
  std::cout << "\nExpected: migrated ≈ retrained (the §IV-D claim);"
               " unmigrated wastes flagship headroom because its stage"
               " peaks are calibrated for the weaker baseline.\n";
  return 0;
}
