// colocation_demo — watch CoCG co-locate two games on one GPU.
//
//   $ ./colocation_demo [minutes] [--metrics-out m.json]
//                       [--events-out e.jsonl] [--trace-out t.json]
//
// Runs Genshin Impact and DOTA2 on a single-GPU server (the Fig. 9
// scenario) and prints a minute-by-minute timeline: each game's observed
// GPU draw, its judged stage kind, holds applied by the regulator, and
// the combined utilization against the 95% limit. The observability flags
// dump the run's metrics/events/trace — the worked example in
// docs/observability.md walks through the outputs.
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/cocg_scheduler.h"
#include "core/offline.h"
#include "game/library.h"
#include "obs/cli.h"
#include "platform/cloud_platform.h"

using namespace cocg;

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const obs::CliOptions obs_opts = obs::strip_cli_flags(args);
  const int minutes =
      !args.empty() ? std::max(1, std::atoi(args[0].c_str())) : 30;

  std::cout << "Training CoCG on the five-game suite...\n";
  static const std::vector<game::GameSpec> suite = game::paper_suite();
  core::OfflineConfig ocfg;
  ocfg.profiling_runs = 12;
  ocfg.corpus_runs = 60;
  ocfg.seed = 4096;
  auto models = core::train_suite(suite, ocfg);
  for (const auto& [name, tg] : models) {
    std::cout << "  " << name << ": accuracy "
              << TablePrinter::fmt_pct(100 * tg.predictor->accuracy(), 1)
              << ", peak " << tg.profile->peak_demand.str() << "\n";
  }

  platform::PlatformConfig pcfg;
  pcfg.seed = 11;
  platform::CloudPlatform cloud(
      pcfg, std::make_unique<core::CocgScheduler>(std::move(models)));
  hw::ServerSpec one_gpu;
  one_gpu.num_gpus = 1;
  cloud.add_server(one_gpu);
  cloud.enable_utilization_recording(true);
  cloud.add_source({&suite[2], 1, 8});  // Genshin Impact
  cloud.add_source({&suite[0], 1, 8});  // DOTA2

  std::cout << "\nminute | combined GPU | per-session (game, stage, gpu%)\n"
            << "-------+--------------+---------------------------------\n";
  std::size_t util_cursor = 0;
  for (int m = 1; m <= minutes; ++m) {
    cloud.run(60 * 1000);
    // Mean combined GPU over the last minute.
    const auto& log = cloud.utilization_log();
    double gpu_sum = 0;
    std::size_t n = 0;
    for (; util_cursor < log.size(); ++util_cursor) {
      gpu_sum += log[util_cursor].total_supplied.gpu();
      ++n;
    }
    std::cout << std::setw(6) << m << " | " << std::setw(11)
              << TablePrinter::fmt(n ? gpu_sum / n : 0.0, 1) << "% |";
    for (SessionId sid : cloud.session_ids()) {
      const auto& truth = cloud.session_truth(sid);
      const auto& samples = cloud.session_trace(sid).samples();
      const double gpu = samples.empty() ? 0.0 : samples.back().usage.gpu();
      std::cout << "  [" << truth.spec().name << ": "
                << (truth.stage_kind() == game::StageKind::kLoading
                        ? (truth.loading_hold() ? "loading(HELD)" : "loading")
                        : "exec")
                << " " << TablePrinter::fmt(gpu, 0) << "%]";
    }
    std::cout << "\n";
  }

  std::cout << "\n=== results after " << minutes << " minutes ===\n";
  for (const auto& [name, gs] : cloud.game_stats()) {
    std::cout << name << ": " << gs.completed << " completed runs, "
              << TablePrinter::fmt(gs.total_duration_s, 0)
              << "s delivered, FPS ratio "
              << TablePrinter::fmt_pct(100 * gs.mean_fps_ratio, 1)
              << ", QoS violations " << TablePrinter::fmt(gs.qos_violation_s, 0)
              << "s\n";
  }
  std::cout << "throughput T = " << TablePrinter::fmt(cloud.throughput(), 0)
            << " game-seconds\n";
  obs::write_outputs(obs_opts);
  return 0;
}
