file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_colocation_timeline.dir/bench_fig9_colocation_timeline.cpp.o"
  "CMakeFiles/bench_fig9_colocation_timeline.dir/bench_fig9_colocation_timeline.cpp.o.d"
  "bench_fig9_colocation_timeline"
  "bench_fig9_colocation_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_colocation_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
