# Empty compiler generated dependencies file for bench_fig9_colocation_timeline.
# This may be replaced when dependencies are built.
