file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_kmeans_elbow.dir/bench_fig14_kmeans_elbow.cpp.o"
  "CMakeFiles/bench_fig14_kmeans_elbow.dir/bench_fig14_kmeans_elbow.cpp.o.d"
  "bench_fig14_kmeans_elbow"
  "bench_fig14_kmeans_elbow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_kmeans_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
