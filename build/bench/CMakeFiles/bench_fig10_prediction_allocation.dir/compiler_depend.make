# Empty compiler generated dependencies file for bench_fig10_prediction_allocation.
# This may be replaced when dependencies are built.
