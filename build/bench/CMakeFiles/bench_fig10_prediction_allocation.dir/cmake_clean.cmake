file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_prediction_allocation.dir/bench_fig10_prediction_allocation.cpp.o"
  "CMakeFiles/bench_fig10_prediction_allocation.dir/bench_fig10_prediction_allocation.cpp.o.d"
  "bench_fig10_prediction_allocation"
  "bench_fig10_prediction_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_prediction_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
