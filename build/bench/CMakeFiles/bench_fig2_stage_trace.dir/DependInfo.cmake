
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_stage_trace.cpp" "bench/CMakeFiles/bench_fig2_stage_trace.dir/bench_fig2_stage_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_stage_trace.dir/bench_fig2_stage_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cocg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cocg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cocg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cocg_game.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cocg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
