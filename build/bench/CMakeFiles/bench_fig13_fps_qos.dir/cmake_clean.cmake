file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fps_qos.dir/bench_fig13_fps_qos.cpp.o"
  "CMakeFiles/bench_fig13_fps_qos.dir/bench_fig13_fps_qos.cpp.o.d"
  "bench_fig13_fps_qos"
  "bench_fig13_fps_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fps_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
