# Empty compiler generated dependencies file for bench_fig13_fps_qos.
# This may be replaced when dependencies are built.
