# Empty compiler generated dependencies file for bench_fig6_dmc_clustering.
# This may be replaced when dependencies are built.
