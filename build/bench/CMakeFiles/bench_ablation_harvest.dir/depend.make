# Empty dependencies file for bench_ablation_harvest.
# This may be replaced when dependencies are built.
