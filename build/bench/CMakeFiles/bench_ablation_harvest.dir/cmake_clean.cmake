file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_harvest.dir/bench_ablation_harvest.cpp.o"
  "CMakeFiles/bench_ablation_harvest.dir/bench_ablation_harvest.cpp.o.d"
  "bench_ablation_harvest"
  "bench_ablation_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
