# Empty compiler generated dependencies file for bench_fig5_csgo_clustering.
# This may be replaced when dependencies are built.
