
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_check.cpp" "tests/CMakeFiles/test_common.dir/common/test_check.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_check.cpp.o.d"
  "/root/repo/tests/common/test_log.cpp" "tests/CMakeFiles/test_common.dir/common/test_log.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_log.cpp.o.d"
  "/root/repo/tests/common/test_resources.cpp" "tests/CMakeFiles/test_common.dir/common/test_resources.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_resources.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_types.cpp" "tests/CMakeFiles/test_common.dir/common/test_types.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cocg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cocg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cocg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cocg_game.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cocg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
