
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_baselines.cpp" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o.d"
  "/root/repo/tests/core/test_capacity_planner.cpp" "tests/CMakeFiles/test_core.dir/core/test_capacity_planner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_capacity_planner.cpp.o.d"
  "/root/repo/tests/core/test_distributor.cpp" "tests/CMakeFiles/test_core.dir/core/test_distributor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_distributor.cpp.o.d"
  "/root/repo/tests/core/test_migration.cpp" "tests/CMakeFiles/test_core.dir/core/test_migration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_migration.cpp.o.d"
  "/root/repo/tests/core/test_monitor.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "/root/repo/tests/core/test_monitor_e2e.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor_e2e.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor_e2e.cpp.o.d"
  "/root/repo/tests/core/test_monitor_refine.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor_refine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor_refine.cpp.o.d"
  "/root/repo/tests/core/test_offline.cpp" "tests/CMakeFiles/test_core.dir/core/test_offline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_offline.cpp.o.d"
  "/root/repo/tests/core/test_placement.cpp" "tests/CMakeFiles/test_core.dir/core/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_placement.cpp.o.d"
  "/root/repo/tests/core/test_predictor.cpp" "tests/CMakeFiles/test_core.dir/core/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_predictor.cpp.o.d"
  "/root/repo/tests/core/test_profile_io.cpp" "tests/CMakeFiles/test_core.dir/core/test_profile_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_profile_io.cpp.o.d"
  "/root/repo/tests/core/test_profiler.cpp" "tests/CMakeFiles/test_core.dir/core/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_profiler.cpp.o.d"
  "/root/repo/tests/core/test_regulator.cpp" "tests/CMakeFiles/test_core.dir/core/test_regulator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_regulator.cpp.o.d"
  "/root/repo/tests/core/test_robustness.cpp" "tests/CMakeFiles/test_core.dir/core/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_robustness.cpp.o.d"
  "/root/repo/tests/core/test_schedulers.cpp" "tests/CMakeFiles/test_core.dir/core/test_schedulers.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cocg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cocg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cocg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cocg_game.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cocg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
