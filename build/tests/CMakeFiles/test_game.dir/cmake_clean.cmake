file(REMOVE_RECURSE
  "CMakeFiles/test_game.dir/game/test_library.cpp.o"
  "CMakeFiles/test_game.dir/game/test_library.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_plan.cpp.o"
  "CMakeFiles/test_game.dir/game/test_plan.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_random_specs.cpp.o"
  "CMakeFiles/test_game.dir/game/test_random_specs.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_session.cpp.o"
  "CMakeFiles/test_game.dir/game/test_session.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_spec.cpp.o"
  "CMakeFiles/test_game.dir/game/test_spec.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_tracegen.cpp.o"
  "CMakeFiles/test_game.dir/game/test_tracegen.cpp.o.d"
  "test_game"
  "test_game.pdb"
  "test_game[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
