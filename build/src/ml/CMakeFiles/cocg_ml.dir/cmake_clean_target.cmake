file(REMOVE_RECURSE
  "libcocg_ml.a"
)
