file(REMOVE_RECURSE
  "CMakeFiles/cocg_ml.dir/classifier.cpp.o"
  "CMakeFiles/cocg_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/dataset.cpp.o"
  "CMakeFiles/cocg_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/gbdt.cpp.o"
  "CMakeFiles/cocg_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/graph_cluster.cpp.o"
  "CMakeFiles/cocg_ml.dir/graph_cluster.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/kmeans.cpp.o"
  "CMakeFiles/cocg_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/metrics.cpp.o"
  "CMakeFiles/cocg_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/random_forest.cpp.o"
  "CMakeFiles/cocg_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/cocg_ml.dir/tree.cpp.o"
  "CMakeFiles/cocg_ml.dir/tree.cpp.o.d"
  "libcocg_ml.a"
  "libcocg_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
