# Empty dependencies file for cocg_ml.
# This may be replaced when dependencies are built.
