# Empty compiler generated dependencies file for cocg_sim.
# This may be replaced when dependencies are built.
