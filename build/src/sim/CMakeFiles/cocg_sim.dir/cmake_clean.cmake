file(REMOVE_RECURSE
  "CMakeFiles/cocg_sim.dir/engine.cpp.o"
  "CMakeFiles/cocg_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cocg_sim.dir/event_queue.cpp.o"
  "CMakeFiles/cocg_sim.dir/event_queue.cpp.o.d"
  "libcocg_sim.a"
  "libcocg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
