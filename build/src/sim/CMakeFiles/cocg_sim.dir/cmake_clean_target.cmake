file(REMOVE_RECURSE
  "libcocg_sim.a"
)
