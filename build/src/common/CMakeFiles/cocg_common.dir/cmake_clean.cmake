file(REMOVE_RECURSE
  "CMakeFiles/cocg_common.dir/log.cpp.o"
  "CMakeFiles/cocg_common.dir/log.cpp.o.d"
  "CMakeFiles/cocg_common.dir/resources.cpp.o"
  "CMakeFiles/cocg_common.dir/resources.cpp.o.d"
  "CMakeFiles/cocg_common.dir/rng.cpp.o"
  "CMakeFiles/cocg_common.dir/rng.cpp.o.d"
  "CMakeFiles/cocg_common.dir/stats.cpp.o"
  "CMakeFiles/cocg_common.dir/stats.cpp.o.d"
  "CMakeFiles/cocg_common.dir/table.cpp.o"
  "CMakeFiles/cocg_common.dir/table.cpp.o.d"
  "libcocg_common.a"
  "libcocg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
