file(REMOVE_RECURSE
  "libcocg_common.a"
)
