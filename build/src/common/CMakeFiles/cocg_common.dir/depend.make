# Empty dependencies file for cocg_common.
# This may be replaced when dependencies are built.
