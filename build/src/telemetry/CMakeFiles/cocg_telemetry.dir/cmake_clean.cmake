file(REMOVE_RECURSE
  "CMakeFiles/cocg_telemetry.dir/trace.cpp.o"
  "CMakeFiles/cocg_telemetry.dir/trace.cpp.o.d"
  "CMakeFiles/cocg_telemetry.dir/window.cpp.o"
  "CMakeFiles/cocg_telemetry.dir/window.cpp.o.d"
  "libcocg_telemetry.a"
  "libcocg_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
