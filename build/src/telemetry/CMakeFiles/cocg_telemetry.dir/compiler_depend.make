# Empty compiler generated dependencies file for cocg_telemetry.
# This may be replaced when dependencies are built.
