file(REMOVE_RECURSE
  "libcocg_telemetry.a"
)
