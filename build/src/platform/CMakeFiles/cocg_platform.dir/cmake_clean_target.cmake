file(REMOVE_RECURSE
  "libcocg_platform.a"
)
