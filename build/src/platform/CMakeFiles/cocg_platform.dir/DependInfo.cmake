
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cloud_platform.cpp" "src/platform/CMakeFiles/cocg_platform.dir/cloud_platform.cpp.o" "gcc" "src/platform/CMakeFiles/cocg_platform.dir/cloud_platform.cpp.o.d"
  "/root/repo/src/platform/streaming.cpp" "src/platform/CMakeFiles/cocg_platform.dir/streaming.cpp.o" "gcc" "src/platform/CMakeFiles/cocg_platform.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cocg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cocg_game.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
