file(REMOVE_RECURSE
  "CMakeFiles/cocg_platform.dir/cloud_platform.cpp.o"
  "CMakeFiles/cocg_platform.dir/cloud_platform.cpp.o.d"
  "CMakeFiles/cocg_platform.dir/streaming.cpp.o"
  "CMakeFiles/cocg_platform.dir/streaming.cpp.o.d"
  "libcocg_platform.a"
  "libcocg_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
