# Empty dependencies file for cocg_platform.
# This may be replaced when dependencies are built.
