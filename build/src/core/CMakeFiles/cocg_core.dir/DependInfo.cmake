
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/cocg_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/capacity_planner.cpp" "src/core/CMakeFiles/cocg_core.dir/capacity_planner.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/capacity_planner.cpp.o.d"
  "/root/repo/src/core/cocg_scheduler.cpp" "src/core/CMakeFiles/cocg_core.dir/cocg_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/cocg_scheduler.cpp.o.d"
  "/root/repo/src/core/distributor.cpp" "src/core/CMakeFiles/cocg_core.dir/distributor.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/distributor.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/cocg_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/features.cpp.o.d"
  "/root/repo/src/core/frame_profiler.cpp" "src/core/CMakeFiles/cocg_core.dir/frame_profiler.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/frame_profiler.cpp.o.d"
  "/root/repo/src/core/game_profile.cpp" "src/core/CMakeFiles/cocg_core.dir/game_profile.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/game_profile.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/cocg_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/offline.cpp" "src/core/CMakeFiles/cocg_core.dir/offline.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/offline.cpp.o.d"
  "/root/repo/src/core/online_monitor.cpp" "src/core/CMakeFiles/cocg_core.dir/online_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/online_monitor.cpp.o.d"
  "/root/repo/src/core/profile_io.cpp" "src/core/CMakeFiles/cocg_core.dir/profile_io.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/profile_io.cpp.o.d"
  "/root/repo/src/core/regulator.cpp" "src/core/CMakeFiles/cocg_core.dir/regulator.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/regulator.cpp.o.d"
  "/root/repo/src/core/stage_predictor.cpp" "src/core/CMakeFiles/cocg_core.dir/stage_predictor.cpp.o" "gcc" "src/core/CMakeFiles/cocg_core.dir/stage_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cocg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cocg_game.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cocg_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cocg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
