# Empty dependencies file for cocg_core.
# This may be replaced when dependencies are built.
