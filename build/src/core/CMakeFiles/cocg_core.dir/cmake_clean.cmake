file(REMOVE_RECURSE
  "CMakeFiles/cocg_core.dir/baselines.cpp.o"
  "CMakeFiles/cocg_core.dir/baselines.cpp.o.d"
  "CMakeFiles/cocg_core.dir/capacity_planner.cpp.o"
  "CMakeFiles/cocg_core.dir/capacity_planner.cpp.o.d"
  "CMakeFiles/cocg_core.dir/cocg_scheduler.cpp.o"
  "CMakeFiles/cocg_core.dir/cocg_scheduler.cpp.o.d"
  "CMakeFiles/cocg_core.dir/distributor.cpp.o"
  "CMakeFiles/cocg_core.dir/distributor.cpp.o.d"
  "CMakeFiles/cocg_core.dir/features.cpp.o"
  "CMakeFiles/cocg_core.dir/features.cpp.o.d"
  "CMakeFiles/cocg_core.dir/frame_profiler.cpp.o"
  "CMakeFiles/cocg_core.dir/frame_profiler.cpp.o.d"
  "CMakeFiles/cocg_core.dir/game_profile.cpp.o"
  "CMakeFiles/cocg_core.dir/game_profile.cpp.o.d"
  "CMakeFiles/cocg_core.dir/migration.cpp.o"
  "CMakeFiles/cocg_core.dir/migration.cpp.o.d"
  "CMakeFiles/cocg_core.dir/offline.cpp.o"
  "CMakeFiles/cocg_core.dir/offline.cpp.o.d"
  "CMakeFiles/cocg_core.dir/online_monitor.cpp.o"
  "CMakeFiles/cocg_core.dir/online_monitor.cpp.o.d"
  "CMakeFiles/cocg_core.dir/profile_io.cpp.o"
  "CMakeFiles/cocg_core.dir/profile_io.cpp.o.d"
  "CMakeFiles/cocg_core.dir/regulator.cpp.o"
  "CMakeFiles/cocg_core.dir/regulator.cpp.o.d"
  "CMakeFiles/cocg_core.dir/stage_predictor.cpp.o"
  "CMakeFiles/cocg_core.dir/stage_predictor.cpp.o.d"
  "libcocg_core.a"
  "libcocg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
