file(REMOVE_RECURSE
  "libcocg_core.a"
)
