file(REMOVE_RECURSE
  "libcocg_game.a"
)
