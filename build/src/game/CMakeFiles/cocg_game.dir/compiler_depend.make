# Empty compiler generated dependencies file for cocg_game.
# This may be replaced when dependencies are built.
