
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/library.cpp" "src/game/CMakeFiles/cocg_game.dir/library.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/library.cpp.o.d"
  "/root/repo/src/game/plan.cpp" "src/game/CMakeFiles/cocg_game.dir/plan.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/plan.cpp.o.d"
  "/root/repo/src/game/platform_scaling.cpp" "src/game/CMakeFiles/cocg_game.dir/platform_scaling.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/platform_scaling.cpp.o.d"
  "/root/repo/src/game/session.cpp" "src/game/CMakeFiles/cocg_game.dir/session.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/session.cpp.o.d"
  "/root/repo/src/game/spec.cpp" "src/game/CMakeFiles/cocg_game.dir/spec.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/spec.cpp.o.d"
  "/root/repo/src/game/tracegen.cpp" "src/game/CMakeFiles/cocg_game.dir/tracegen.cpp.o" "gcc" "src/game/CMakeFiles/cocg_game.dir/tracegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cocg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/cocg_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cocg_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
