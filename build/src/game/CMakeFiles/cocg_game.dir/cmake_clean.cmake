file(REMOVE_RECURSE
  "CMakeFiles/cocg_game.dir/library.cpp.o"
  "CMakeFiles/cocg_game.dir/library.cpp.o.d"
  "CMakeFiles/cocg_game.dir/plan.cpp.o"
  "CMakeFiles/cocg_game.dir/plan.cpp.o.d"
  "CMakeFiles/cocg_game.dir/platform_scaling.cpp.o"
  "CMakeFiles/cocg_game.dir/platform_scaling.cpp.o.d"
  "CMakeFiles/cocg_game.dir/session.cpp.o"
  "CMakeFiles/cocg_game.dir/session.cpp.o.d"
  "CMakeFiles/cocg_game.dir/spec.cpp.o"
  "CMakeFiles/cocg_game.dir/spec.cpp.o.d"
  "CMakeFiles/cocg_game.dir/tracegen.cpp.o"
  "CMakeFiles/cocg_game.dir/tracegen.cpp.o.d"
  "libcocg_game.a"
  "libcocg_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
