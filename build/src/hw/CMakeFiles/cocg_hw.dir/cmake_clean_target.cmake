file(REMOVE_RECURSE
  "libcocg_hw.a"
)
