file(REMOVE_RECURSE
  "CMakeFiles/cocg_hw.dir/contention.cpp.o"
  "CMakeFiles/cocg_hw.dir/contention.cpp.o.d"
  "CMakeFiles/cocg_hw.dir/server.cpp.o"
  "CMakeFiles/cocg_hw.dir/server.cpp.o.d"
  "libcocg_hw.a"
  "libcocg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
