# Empty compiler generated dependencies file for cocg_hw.
# This may be replaced when dependencies are built.
