# Empty compiler generated dependencies file for cocg_profiler.
# This may be replaced when dependencies are built.
