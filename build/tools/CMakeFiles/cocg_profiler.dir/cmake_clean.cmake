file(REMOVE_RECURSE
  "CMakeFiles/cocg_profiler.dir/cocg_profiler.cpp.o"
  "CMakeFiles/cocg_profiler.dir/cocg_profiler.cpp.o.d"
  "cocg_profiler"
  "cocg_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
