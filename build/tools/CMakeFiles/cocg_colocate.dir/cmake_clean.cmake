file(REMOVE_RECURSE
  "CMakeFiles/cocg_colocate.dir/cocg_colocate.cpp.o"
  "CMakeFiles/cocg_colocate.dir/cocg_colocate.cpp.o.d"
  "cocg_colocate"
  "cocg_colocate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocg_colocate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
