# Empty dependencies file for cocg_colocate.
# This may be replaced when dependencies are built.
