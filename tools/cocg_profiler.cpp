// cocg_profiler — command-line profiling utility.
//
//   cocg_profiler profile <game> <out.cocg> [runs] [seed]
//   cocg_profiler train <game> <out.cocgm> [profiling_runs] [corpus_runs]
//                                          [seed]
//   cocg_profiler train-suite <dir> [profiling_runs] [corpus_runs] [seed]
//   cocg_profiler show <profile.cocg | bundle.cocgm>
//   cocg_profiler migrate <in.cocg> <out.cocg> <baseline|budget|flagship>
//                                              <baseline|budget|flagship>
//   cocg_profiler plan [baseline|budget|flagship]
//
// `profile` runs laboratory play-throughs of a suite title, builds the
// frame-cluster + stage-type catalog (§IV-A), and saves it. `train` runs
// the full offline pipeline (profile + predictor) and saves the game
// bundle a scheduler can load instead of retraining ("train once",
// §IV-B1); `train-suite` does that for every paper game into a directory
// `cocg_colocate`/`cocg_fleet` accept via --models-in. `show` pretty-
// prints a saved profile or bundle. `migrate` rescales a profile between
// SKUs (§IV-D). `plan` trains the whole suite and prints the maximal game
// mixes one GPU view of the SKU can host under the distributor's
// expected-demand rule. Game names: DOTA2, CSGO, "Genshin Impact",
// "Devil May Cry", Contra.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/frame_profiler.h"
#include "core/capacity_planner.h"
#include "core/migration.h"
#include "core/model_bank.h"
#include "core/offline.h"
#include "core/profile_io.h"
#include "game/library.h"
#include "game/tracegen.h"
#include "obs/cli.h"

using namespace cocg;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  cocg_profiler profile <game> <out.cocg> [runs] [seed]\n"
            << "  cocg_profiler train <game> <out.cocgm> [profiling_runs]"
               " [corpus_runs] [seed]\n"
            << "  cocg_profiler train-suite <dir> [profiling_runs]"
               " [corpus_runs] [seed]\n"
            << "  cocg_profiler show <profile.cocg | bundle.cocgm>\n"
            << "  cocg_profiler migrate <in.cocg> <out.cocg> <from> <to>\n"
            << "     (<from>/<to> in {baseline, budget, flagship})\n"
            << "  cocg_profiler plan [baseline|budget|flagship]\n"
            << obs::cli_usage();
  return 2;
}

hw::ServerSpec sku_by_name(const std::string& name) {
  if (name == "baseline") return hw::baseline_sku();
  if (name == "budget") return hw::budget_sku();
  if (name == "flagship") return hw::flagship_sku();
  throw std::runtime_error("unknown SKU: " + name);
}

void print_profile(const core::GameProfile& p) {
  std::cout << "game: " << p.game_name << "\n"
            << "peak demand: " << p.peak_demand.str() << "\n";
  TablePrinter clusters({"cluster", "CPU%", "GPU%", "VRAM MB", "RAM MB",
                         "frames", "loading?"});
  for (const auto& c : p.clusters) {
    clusters.add_row({std::to_string(c.id),
                      TablePrinter::fmt(c.centroid.cpu(), 1),
                      TablePrinter::fmt(c.centroid.gpu(), 1),
                      TablePrinter::fmt(c.centroid.gpu_mem(), 0),
                      TablePrinter::fmt(c.centroid.ram(), 0),
                      std::to_string(c.frames), c.loading ? "yes" : "no"});
  }
  clusters.print(std::cout);
  TablePrinter stages({"type", "clusters", "kind", "peak GPU%",
                       "mean dwell (s)", "seen"});
  for (const auto& st : p.stage_types) {
    std::string sig;
    for (std::size_t i = 0; i < st.clusters.size(); ++i) {
      sig += (i ? "+" : "") + std::to_string(st.clusters[i]);
    }
    stages.add_row({std::to_string(st.id), sig,
                    st.loading ? "loading" : "execution",
                    TablePrinter::fmt(st.peak_demand.gpu(), 1),
                    TablePrinter::fmt(ms_to_sec(st.mean_duration_ms), 0),
                    std::to_string(st.occurrences)});
  }
  stages.print(std::cout);
}

int cmd_profile(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string game_name = argv[2];
  const std::string out_path = argv[3];
  const int runs = argc > 4 ? std::max(1, std::atoi(argv[4])) : 12;
  const std::uint64_t seed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2024;

  const game::GameSpec spec = game::game_by_name(game_name);
  std::cout << "profiling " << spec.name << " over " << runs
            << " laboratory runs...\n";
  std::vector<telemetry::Trace> traces;
  Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    const auto script = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.scripts.size()) - 1));
    traces.push_back(game::profile_run(
        spec, script, static_cast<std::uint64_t>(r % 6 + 1),
        rng.next_u64()));
  }
  core::ProfilerConfig cfg;
  cfg.forced_k = spec.num_clusters();
  core::FrameProfiler profiler(cfg);
  const auto out = profiler.profile(spec.name, traces, rng);
  print_profile(out.profile);
  core::save_profile(out.profile, out_path);
  std::cout << "saved to " << out_path << "\n";
  return 0;
}

void print_bundle_summary(const core::GameBundle& b) {
  const auto& art = b.predictor;
  TablePrinter model({"bundle field", "value"});
  model.add_row({"model", ml::model_kind_name(art.cfg.model)});
  model.add_row({"held-out accuracy P",
                 TablePrinter::fmt_pct(100 * art.accuracy, 1)});
  model.add_row({"pooled trees",
                 std::to_string(art.pooled ? art.pooled->num_trees() : 0)});
  model.add_row({"pooled nodes",
                 std::to_string(art.pooled ? art.pooled->node_count() : 0)});
  model.add_row({"per-player models", std::to_string(art.per_player.size())});
  model.add_row({"training runs in corpus",
                 std::to_string(art.corpus.size())});
  model.add_row({"replace_model available",
                 art.corpus.empty() ? "no (corpus stripped)" : "yes"});
  model.add_row({"chosen K", std::to_string(b.chosen_k)});
  model.add_row({"mean run duration (s)",
                 TablePrinter::fmt(ms_to_sec(b.mean_run_duration_ms), 0)});
  model.print(std::cout);
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string out_path = argv[3];
  core::OfflineConfig cfg;
  cfg.profiling_runs = argc > 4 ? std::max(1, std::atoi(argv[4])) : 12;
  cfg.corpus_runs = argc > 5 ? std::max(1, std::atoi(argv[5])) : 60;
  cfg.seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 2024;

  const game::GameSpec spec = game::game_by_name(argv[2]);
  std::cout << "training " << spec.name << " (" << cfg.profiling_runs
            << " profiling runs, " << cfg.corpus_runs
            << " corpus runs, seed " << cfg.seed << ")...\n";
  const auto tg = core::train_game(spec, cfg);
  const auto bundle = core::ModelBank::bundle_from(tg);
  core::save_bundle_file(bundle, out_path);
  print_bundle_summary(bundle);
  std::cout << "saved bundle to " << out_path << "\n";
  return 0;
}

int cmd_train_suite(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string dir = argv[2];
  core::OfflineConfig cfg;
  cfg.profiling_runs = argc > 3 ? std::max(1, std::atoi(argv[3])) : 12;
  cfg.corpus_runs = argc > 4 ? std::max(1, std::atoi(argv[4])) : 60;
  cfg.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2024;

  static const std::vector<game::GameSpec> suite = game::paper_suite();
  std::cout << "training the paper suite (" << cfg.profiling_runs
            << " profiling runs, " << cfg.corpus_runs
            << " corpus runs, seed " << cfg.seed << ")...\n";
  core::ModelBank bank;
  TablePrinter table({"game", "model", "accuracy P", "trees"});
  for (const auto& [name, tg] : core::train_suite(suite, cfg)) {
    bank.add_trained(tg);
    table.add_row(
        {name, ml::model_kind_name(tg.predictor->model_kind()),
         TablePrinter::fmt_pct(100 * tg.predictor->accuracy(), 1),
         std::to_string(tg.predictor->trained()
                            ? bank.bundle(name).predictor.pooled->num_trees()
                            : 0)});
  }
  table.print(std::cout);
  const auto paths = bank.save_dir(dir);
  std::cout << "wrote " << paths.size() << " bundle(s) to " << dir << "\n";
  return 0;
}

int cmd_show(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[2];
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string first;
  std::getline(in, first);
  in.clear();
  in.seekg(0);
  if (first.rfind("cocg-bundle-", 0) == 0) {
    const auto bundle = core::read_bundle(in);
    print_profile(*bundle.profile);
    print_bundle_summary(bundle);
  } else {
    print_profile(core::read_profile(in));
  }
  return 0;
}

int cmd_migrate(int argc, char** argv) {
  if (argc < 6) return usage();
  const auto profile = core::load_profile(argv[2]);
  const auto from = sku_by_name(argv[4]);
  const auto to = sku_by_name(argv[5]);
  const auto migrated = core::migrate_profile(profile, from, to);
  core::save_profile(migrated, argv[3]);
  std::cout << "migrated " << profile.game_name << " from " << from.name
            << " to " << to.name << " -> " << argv[3] << "\n";
  print_profile(migrated);
  return 0;
}

int cmd_plan(int argc, char** argv) {
  const hw::ServerSpec sku =
      argc > 2 ? sku_by_name(argv[2]) : hw::baseline_sku();
  std::cout << "training the suite, planning one GPU view of " << sku.name
            << "...\n";
  static const std::vector<game::GameSpec> suite = game::paper_suite();
  core::OfflineConfig cfg;
  cfg.profiling_runs = 10;
  cfg.corpus_runs = 20;
  const auto models = core::train_suite(suite, cfg);
  core::CapacityPlanner planner(&models);

  TablePrinter caps({"game", "expected GPU%", "max concurrent / view"});
  for (const auto& [name, tg] : models) {
    caps.add_row({name,
                  TablePrinter::fmt(planner.expected_demand(name).gpu(), 1),
                  std::to_string(planner.max_concurrent(name, sku))});
  }
  caps.print(std::cout);

  TablePrinter mixes({"maximal mix", "expected GPU%", "headroom"});
  for (const auto& mix : planner.maximal_mixes(sku)) {
    std::string label;
    for (std::size_t i = 0; i < mix.games.size(); ++i) {
      label += (i ? " + " : "") + mix.games[i];
    }
    mixes.add_row({label, TablePrinter::fmt(mix.expected_total.gpu(), 1),
                   TablePrinter::fmt_pct(100 * mix.headroom, 1)});
  }
  mixes.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip the observability flags, then hand the subcommands a rebuilt
    // argv so their positional parsing is unchanged.
    std::vector<std::string> args(argv + 1, argv + argc);
    const obs::CliOptions obs_opts = obs::strip_cli_flags(args);
    std::vector<char*> av{argv[0]};
    for (auto& s : args) av.push_back(s.data());
    const int ac = static_cast<int>(av.size());
    if (ac < 2) return usage();
    const std::string cmd = av[1];

    int rc = -1;
    if (cmd == "profile") rc = cmd_profile(ac, av.data());
    else if (cmd == "train") rc = cmd_train(ac, av.data());
    else if (cmd == "train-suite") rc = cmd_train_suite(ac, av.data());
    else if (cmd == "show") rc = cmd_show(ac, av.data());
    else if (cmd == "migrate") rc = cmd_migrate(ac, av.data());
    else if (cmd == "plan") rc = cmd_plan(ac, av.data());
    else return usage();
    if (rc == 0) obs::write_outputs(obs_opts);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
