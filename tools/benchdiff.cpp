#include "benchdiff.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/table.h"

namespace cocg::tools {

namespace {

bool is_gated(const std::string& key, const BenchDiffOptions& opts) {
  for (const auto& prefix : opts.gate_prefixes) {
    if (key.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Append diffs for every numeric field present in both objects, in the
/// baseline's (map-sorted) key order.
void diff_numeric_fields(const obs::JsonValue& base, const obs::JsonValue& cand,
                         const std::string& where,
                         const BenchDiffOptions& opts, BenchDiff& out) {
  for (const auto& [key, bval] : base.object) {
    if (bval.kind != obs::JsonValue::Kind::kNumber) continue;
    const obs::JsonValue* cval = cand.find(key);
    if (cval == nullptr || cval->kind != obs::JsonValue::Kind::kNumber) {
      continue;
    }
    MetricDiff m;
    m.where = where;
    m.key = key;
    m.baseline = bval.number;
    m.candidate = cval->number;
    m.ratio = bval.number != 0.0 ? cval->number / bval.number : 1.0;
    m.gated = is_gated(key, opts);
    m.regression =
        m.gated && m.baseline > 0.0 && m.ratio < 1.0 - opts.threshold;
    if (m.regression) out.any_regression = true;
    out.metrics.push_back(std::move(m));
  }
}

/// Rows describe the same configuration iff every string field present in
/// both agrees (e.g. {"noise":"on","obs":"off"}).
bool labels_match(const obs::JsonValue& base, const obs::JsonValue& cand,
                  std::string& why) {
  for (const auto& [key, bval] : base.object) {
    if (bval.kind != obs::JsonValue::Kind::kString) continue;
    const obs::JsonValue* cval = cand.find(key);
    if (cval == nullptr || cval->kind != obs::JsonValue::Kind::kString) {
      continue;
    }
    if (cval->string != bval.string) {
      why = key + ": \"" + bval.string + "\" vs \"" + cval->string + "\"";
      return false;
    }
  }
  return true;
}

/// A row's identity: every string field, in (map-sorted) key order. Used
/// to pair rows across files when positional matching is impossible.
std::string row_label_key(const obs::JsonValue& row) {
  std::string key;
  for (const auto& [k, v] : row.object) {
    if (v.kind != obs::JsonValue::Kind::kString) continue;
    key += k;
    key += '=';
    key += v.string;
    key += ';';
  }
  return key;
}

bool load_json_file(const std::string& path, obs::JsonValue& out,
                    std::string& err) {
  std::ifstream is(path);
  if (!is) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << is.rdbuf();
  if (!obs::json_parse(text.str(), out) || !out.is_object()) {
    err = "malformed BENCH json: " + path;
    return false;
  }
  return true;
}

int usage(std::ostream& err) {
  err << "usage: cocg_benchdiff <candidate.json> [baseline.json|dir]\n"
         "  baseline defaults to bench/baselines (directory: picks the\n"
         "  file whose \"experiment\" matches the candidate's)\n"
         "  --threshold X   gated regression bound (default 0.10)\n"
         "  --gate \"a,b\"    gated key prefixes (default ticks_per_sec)\n"
         "exit: 0 ok, 1 gated regression, 2 usage/parse error\n";
  return 2;
}

}  // namespace

BenchDiff diff_bench(const obs::JsonValue& baseline,
                     const obs::JsonValue& candidate,
                     const BenchDiffOptions& opts) {
  BenchDiff out;
  out.experiment = candidate.get_string("experiment");
  const std::string base_exp = baseline.get_string("experiment");
  if (!base_exp.empty() && base_exp != out.experiment) {
    out.warnings.push_back("experiment mismatch: baseline \"" + base_exp +
                           "\" vs candidate \"" + out.experiment + "\"");
  }
  diff_numeric_fields(baseline, candidate, "top", opts, out);

  const obs::JsonValue* brows = baseline.find("rows");
  const obs::JsonValue* crows = candidate.find("rows");
  if (brows == nullptr || crows == nullptr || !brows->is_array() ||
      !crows->is_array()) {
    return out;
  }
  if (brows->array.size() != crows->array.size()) {
    // Positional pairing is meaningless when the row sets diverged (a
    // bench gained or lost a configuration); fall back to pairing rows
    // whose string labels agree and report what found no partner.
    out.warnings.push_back(
        "row count mismatch: baseline " + std::to_string(brows->array.size()) +
        " vs candidate " + std::to_string(crows->array.size()) +
        " (matching rows by labels)");
    std::map<std::string, const obs::JsonValue*> by_label;
    for (const auto& crow : crows->array) {
      if (crow.is_object()) by_label.emplace(row_label_key(crow), &crow);
    }
    std::size_t matched = 0;
    for (std::size_t i = 0; i < brows->array.size(); ++i) {
      const auto& brow = brows->array[i];
      if (!brow.is_object()) continue;
      const std::string key = row_label_key(brow);
      const auto it = by_label.find(key);
      if (it == by_label.end()) {
        out.warnings.push_back("rows[" + std::to_string(i) + "] {" + key +
                               "} has no candidate row, skipped");
        continue;
      }
      ++matched;
      diff_numeric_fields(brow, *it->second, "rows[" + std::to_string(i) + "]",
                          opts, out);
      by_label.erase(it);
    }
    for (const auto& [key, crow] : by_label) {
      out.warnings.push_back("candidate row {" + key +
                             "} has no baseline row, skipped");
    }
    out.warnings.push_back("matched " + std::to_string(matched) +
                           " row(s) by labels");
    return out;
  }
  const std::size_t n = std::min(brows->array.size(), crows->array.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& brow = brows->array[i];
    const auto& crow = crows->array[i];
    if (!brow.is_object() || !crow.is_object()) continue;
    std::string why;
    if (!labels_match(brow, crow, why)) {
      out.warnings.push_back("rows[" + std::to_string(i) +
                             "] labels differ (" + why + "), skipped");
      continue;
    }
    diff_numeric_fields(brow, crow, "rows[" + std::to_string(i) + "]", opts,
                        out);
  }
  return out;
}

void write_diff_table(const BenchDiff& diff, std::ostream& os) {
  os << "experiment: "
     << (diff.experiment.empty() ? "(unnamed)" : diff.experiment) << "\n";
  for (const auto& w : diff.warnings) os << "warning: " << w << "\n";
  TablePrinter table({"where", "metric", "baseline", "candidate", "ratio",
                      "status"});
  for (const auto& m : diff.metrics) {
    const std::string status =
        m.regression ? "REGRESSION" : (m.gated ? "ok (gated)" : "info");
    table.add_row({m.where, m.key, TablePrinter::fmt(m.baseline, 3),
                   TablePrinter::fmt(m.candidate, 3),
                   TablePrinter::fmt(m.ratio, 3), status});
  }
  table.print(os);
}

std::string resolve_baseline(const std::string& baseline_path,
                             const std::string& experiment) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(baseline_path, ec)) return baseline_path;
  for (const auto& entry : fs::directory_iterator(baseline_path, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    obs::JsonValue doc;
    std::string err;
    if (!load_json_file(entry.path().string(), doc, err)) continue;
    if (doc.get_string("experiment") == experiment) {
      return entry.path().string();
    }
  }
  return "";
}

int run_benchdiff_cli(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err) {
  BenchDiffOptions opts;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (a == "--threshold") {
      const std::string* v = next();
      if (v == nullptr) return usage(err);
      opts.threshold = std::atof(v->c_str());
      if (opts.threshold < 0.0 || opts.threshold >= 1.0) {
        err << "error: --threshold must be in [0, 1)\n";
        return 2;
      }
    } else if (a == "--gate") {
      const std::string* v = next();
      if (v == nullptr) return usage(err);
      opts.gate_prefixes.clear();
      std::stringstream ss(*v);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) opts.gate_prefixes.push_back(item);
      }
    } else if (a == "--help" || a == "-h") {
      return usage(err);
    } else if (!a.empty() && a[0] == '-') {
      err << "unknown flag: " << a << "\n";
      return usage(err);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.empty() || positional.size() > 2) return usage(err);
  const std::string cand_path = positional[0];
  const std::string base_arg =
      positional.size() > 1 ? positional[1] : "bench/baselines";

  obs::JsonValue cand;
  std::string load_err;
  if (!load_json_file(cand_path, cand, load_err)) {
    err << "error: " << load_err << "\n";
    return 2;
  }
  // A missing baseline is a distinct failure from a regression: the gate
  // has nothing to compare against, so fail loudly with its own message
  // (CI treats exit 2 as "fix the setup", not "perf regressed").
  {
    std::error_code ec;
    if (!std::filesystem::exists(base_arg, ec) || ec) {
      err << "error: baseline " << base_arg
          << " not found or unreadable — no baseline to gate against\n";
      return 2;
    }
  }
  const std::string base_path =
      resolve_baseline(base_arg, cand.get_string("experiment"));
  if (base_path.empty()) {
    err << "error: no baseline for experiment \""
        << cand.get_string("experiment") << "\" in " << base_arg << "\n";
    return 2;
  }
  obs::JsonValue base;
  if (!load_json_file(base_path, base, load_err)) {
    err << "error: baseline unreadable: " << load_err << "\n";
    return 2;
  }

  out << "candidate: " << cand_path << "\nbaseline:  " << base_path << "\n";
  const BenchDiff diff = diff_bench(base, cand, opts);
  write_diff_table(diff, out);
  if (diff.any_regression) {
    out << "FAIL: gated metric regressed more than "
        << static_cast<int>(opts.threshold * 100.0) << "%\n";
    return 1;
  }
  out << "PASS: no gated regression beyond "
      << static_cast<int>(opts.threshold * 100.0) << "%\n";
  return 0;
}

}  // namespace cocg::tools
