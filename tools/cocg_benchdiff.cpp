// cocg_benchdiff — regression gate over BENCH_<experiment>.json files.
//
//   cocg_benchdiff <candidate.json> [baseline.json|baseline-dir]
//                  [--threshold 0.10] [--gate "ticks_per_sec"]
//
// See tools/benchdiff.h; all logic lives in run_benchdiff_cli so the
// tests can drive it in-process.
#include <iostream>
#include <string>
#include <vector>

#include "benchdiff.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return cocg::tools::run_benchdiff_cli(args, std::cout, std::cerr);
}
