#!/usr/bin/env bash
# Verifies the SoA batch kernels (src/hw/batch_kernels.cpp) actually
# auto-vectorize under the flags the build uses for that TU
# (-O3 -fno-trapping-math; see src/hw/CMakeLists.txt). Compiles the TU
# with -fopt-info-vec-optimized and requires a "loop vectorized" report
# on each vector kernel's loop line — a silent regression to scalar code
# would otherwise only show up as a bench slowdown. Also checks the
# *_scalar reference variants stayed scalar, or the bench comparison
# measures vector-vs-vector.
#
# Usage: tools/check_vectorize.sh [compiler]   (default: c++)
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${1:-c++}"
SRC=src/hw/batch_kernels.cpp

if ! "$CXX" --version 2>/dev/null | grep -qiE 'g\+\+|gcc|Free Software'; then
  echo "check_vectorize: $CXX is not GCC; -fopt-info-vec unsupported, skipping"
  exit 0
fi

out=$(mktemp /tmp/cocg_vec_report.XXXXXX)
trap 'rm -f "$out" /tmp/cocg_vec_check.o' EXIT

"$CXX" -std=c++20 -O3 -fno-trapping-math -fopt-info-vec-optimized="$out" \
  -Isrc -c "$SRC" -o /tmp/cocg_vec_check.o

# First loop line inside a function definition, by exact function name.
loop_line() {
  awk -v fn="$1" '
    $0 ~ "^(void|double) "fn"\\(" { found = 1 }
    found && /for \(/ { print NR; exit }' "$SRC"
}

status=0
for fn in min_into scale_into mul_into \
          satisfaction_init satisfaction_apply_dim satisfaction_finalize \
          satisfaction_into; do
  line=$(loop_line "$fn")
  if grep -q ":${line}:[0-9]*: optimized: loop vectorized" "$out"; then
    echo "check_vectorize: OK   $fn (line $line)"
  else
    echo "check_vectorize: FAIL $fn (line $line) did not vectorize"
    status=1
  fi
done

# The no-tree-vectorize attribute must keep the scalar references scalar.
# (sum_ordered is exempt: GCC may vectorize it as an in-order fold-left
# reduction, which keeps the exact addition order.)
for fn in min_into_scalar scale_into_scalar mul_into_scalar \
          satisfaction_apply_dim_scalar satisfaction_into_scalar; do
  line=$(loop_line "$fn")
  if grep -q ":${line}:[0-9]*: optimized: loop vectorized" "$out"; then
    echo "check_vectorize: FAIL $fn (line $line) vectorized; must stay scalar"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  grep "loop vectorized" "$out" | sed 's/^/  report: /' || true
  exit "$status"
fi
echo "check_vectorize: all kernels OK"
