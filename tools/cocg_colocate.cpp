// cocg_colocate — run a co-location experiment from the command line.
//
//   cocg_colocate <scheduler> <gameA> <gameB> [minutes] [gpus] [seed]
//                 [--models-in dir] [--models-out dir]
//                 [--trace-in t.trace] [--capture-out t.trace]
//                 [--health-interval-s S]
//                 [--metrics-out m.json] [--events-out e.jsonl]
//                 [--trace-out t.json] [--health-out h.jsonl]
//                 [--obs-out dir]
//
//   scheduler: cocg | vbp | gaugur | improved
//   games:     DOTA2, CSGO, "Genshin Impact", "Devil May Cry", Contra
//
// Trains the suite (or loads pre-trained bundles via --models-in; write
// them with --models-out or `cocg_profiler train-suite`), runs the pair
// closed-loop, and prints throughput, per-game completions, QoS and
// latency statistics — the Fig. 11 cell of your choosing. The
// observability flags additionally dump the metrics registry, the
// decision event log, and a Perfetto-loadable trace.
//
// --capture-out records every request joining the admission queue as a
// traffic trace (docs/traffic.md); --trace-in schedules a trace's
// arrivals INSTEAD of the closed-loop pair sources (the positional games
// still select the schedulers' focus pair but submit no load). Unlike
// the fleet, a colocate replay is not bit-exact against its capture: the
// closed-loop replenisher consumes platform RNG draws the replayed run
// never makes. Use cocg_fleet for byte-identical capture/replay.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli_parse.h"
#include "common/log.h"
#include "common/table.h"
#include "core/model_bank.h"
#include "core/offline.h"
#include "core/scheduler_factory.h"
#include "game/library.h"
#include "obs/cli.h"
#include "obs/health.h"
#include "platform/cloud_platform.h"
#include "traffic/source.h"
#include "traffic/trace.h"

using namespace cocg;

namespace {

int usage() {
  std::cerr << "usage: cocg_colocate <cocg|vbp|gaugur|improved> <gameA>"
               " <gameB> [minutes=120] [gpus=1] [seed=1]\n"
               "  --models-in DIR    load trained bundles instead of"
               " retraining\n"
               "  --models-out DIR   save the trained bundles for reuse\n"
               "  --trace-in FILE    schedule a traffic trace's arrivals"
               " instead of the closed-loop pair\n"
               "  --capture-out FILE record the arrival stream as a"
               " traffic trace\n"
               "  --health-interval-s S  seconds between health"
               " snapshots (default 30)\n"
               "games: DOTA2, CSGO, 'Genshin Impact', 'Devil May Cry',"
               " Contra\n"
            << obs::cli_usage_with_health();
  return 2;
}

/// One JSONL health line for a single-cluster run (shard 0 is the whole
/// platform; no router, so decisions/s stays 0).
void write_platform_health(const platform::CloudPlatform& cloud, TimeMs t,
                           std::ostream& os) {
  obs::HealthSnapshot snap;
  snap.t = t;
  snap.arrivals = cloud.completed_runs().size() + cloud.running_sessions() +
                  cloud.queued_requests();
  obs::HealthShard row;
  row.shard = 0;
  row.servers = cloud.num_servers();
  row.running = cloud.running_sessions();
  row.queued = cloud.queued_requests();
  row.pending_events = cloud.pending_events();
  row.routed = snap.arrivals;
  double util_sum = 0.0;
  std::size_t views = 0;
  for (std::size_t s = 0; s < cloud.num_servers(); ++s) {
    const auto& srv = cloud.server(ServerId{s});
    for (int g = 0; g < srv.spec().num_gpus; ++g) {
      util_sum += srv.utilization_on_gpu(g);
      ++views;
    }
  }
  row.mean_gpu_util = views > 0 ? util_sum / static_cast<double>(views) : 0.0;
  snap.shards.push_back(row);
  snap.slo = cloud.slo_tracker().attainment();
  snap.stage_costs = cloud.stage_profile();
  obs::write_health_snapshot(snap, os);
}

/// Remove the value-taking tool flags before positional parsing.
void strip_tool_flags(std::vector<std::string>& args, std::string& models_in,
                      std::string& models_out, std::string& trace_in,
                      std::string& capture_out, int& health_interval_s) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string* value = nullptr;
    if (args[i] == "--models-in") value = &models_in;
    else if (args[i] == "--models-out") value = &models_out;
    else if (args[i] == "--trace-in") value = &trace_in;
    else if (args[i] == "--capture-out") value = &capture_out;
    if (value != nullptr || args[i] == "--health-interval-s") {
      if (i + 1 >= args.size()) {
        throw std::runtime_error("missing value for " + args[i]);
      }
      if (value != nullptr) {
        *value = args[++i];
      } else {
        health_interval_s =
            tools::parse_positive_int("--health-interval-s", args[++i]);
      }
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    const obs::CliOptions obs_opts =
        obs::strip_cli_flags(args, /*with_health=*/true);
    std::string models_in, models_out, trace_in, capture_out;
    int health_interval_s = 30;
    strip_tool_flags(args, models_in, models_out, trace_in, capture_out,
                     health_interval_s);
    if (args.size() < 3) return usage();
    const std::string sched_name = args[0];
    static const std::vector<game::GameSpec> suite = game::paper_suite();
    const game::GameSpec* a = nullptr;
    const game::GameSpec* b = nullptr;
    for (const auto& g : suite) {
      if (g.name == args[1]) a = &g;
      if (g.name == args[2]) b = &g;
    }
    if (a == nullptr || b == nullptr) {
      std::cerr << "error: unknown game name\n";
      return usage();
    }
    const int minutes =
        args.size() > 3 ? tools::parse_positive_int("minutes", args[3]) : 120;
    const int gpus =
        args.size() > 4 ? tools::parse_positive_int("gpus", args[4]) : 1;
    const std::uint64_t seed =
        args.size() > 5 ? tools::parse_u64("seed", args[5]) : 1;

    std::map<std::string, core::TrainedGame> models;
    if (!models_in.empty()) {
      const auto bank = core::ModelBank::load_dir(models_in);
      std::cout << "loaded " << bank.size() << " model bundle(s) from "
                << models_in << "\n";
      models = bank.instantiate_suite(suite);
    } else {
      std::cout << "training models...\n";
      core::OfflineConfig ocfg;
      ocfg.profiling_runs = 12;
      ocfg.corpus_runs = 60;
      ocfg.seed = seed;
      models = core::train_suite(suite, ocfg);
    }
    if (!models_out.empty()) {
      core::ModelBank bank;
      for (const auto& [name, tg] : models) bank.add_trained(tg);
      const auto paths = bank.save_dir(models_out);
      std::cout << "wrote " << paths.size() << " bundle(s) to "
                << models_out << "\n";
    }

    platform::PlatformConfig pcfg;
    pcfg.seed = seed;
    platform::CloudPlatform cloud(
        pcfg, core::make_named_scheduler(sched_name, std::move(models)));
    set_log_clock([&cloud] { return cloud.now(); });
    hw::ServerSpec spec;
    spec.num_gpus = gpus;
    cloud.add_server(spec);
    cloud.enable_utilization_recording(true);

    // One region table shared by replay binding and capture, so a
    // captured replay keeps the original trace's region names.
    traffic::RegionTable regions;
    if (trace_in.empty()) {
      cloud.add_source({a, a->short_game ? 2 : 1, 8});
      cloud.add_source({b, b->short_game ? 2 : 1, 8});
    } else {
      const traffic::Trace trace = traffic::load_trace(trace_in);
      std::vector<const game::GameSpec*> specs;
      for (const auto& g : suite) specs.push_back(&g);
      const auto replay = traffic::bind_trace(trace, specs, regions);
      for (const auto& arr : replay) {
        platform::RequestMeta meta;
        meta.region = arr.region;
        meta.profile = static_cast<std::uint8_t>(arr.profile);
        meta.expected_session_ms = arr.expected_session_ms;
        cloud.schedule_request(arr.spec, arr.script_idx, arr.player_id,
                               arr.at, meta);
      }
      std::cout << "scheduled " << replay.size() << " arrival(s) from "
                << trace_in << " (replaces closed-loop sources)\n";
    }

    traffic::TraceRecorder recorder;
    if (!capture_out.empty()) {
      recorder.set_meta("capture", "cocg_colocate");
      recorder.set_meta("seed", std::to_string(seed));
      cloud.set_arrival_hook([&](const platform::GameRequest& req) {
        traffic::Arrival arr;
        arr.at = req.arrival;
        arr.spec = req.spec;
        arr.script_idx = static_cast<std::uint32_t>(req.script_idx);
        arr.player_id = req.player_id;
        arr.region = req.meta.region;
        arr.profile = static_cast<traffic::PlayerProfile>(req.meta.profile);
        arr.expected_session_ms = req.meta.expected_session_ms;
        recorder.record(arr, regions, /*shard=*/-1);
      });
    }

    std::cout << "running " << a->name << " + " << b->name << " under "
              << cloud.scheduler().name() << " for " << minutes
              << " min on " << gpus << " GPU(s)...\n";
    const DurationMs horizon = static_cast<DurationMs>(minutes) * 60 * 1000;
    if (obs_opts.health_out.empty()) {
      cloud.run(horizon);
    } else {
      std::ofstream health_os(obs_opts.health_out);
      if (!health_os) {
        throw std::runtime_error("cannot open " + obs_opts.health_out);
      }
      // Split-phase run with one health line per --health-interval-s of
      // simulated time.
      const DurationMs step =
          static_cast<DurationMs>(health_interval_s) * 1000;
      obs::write_health_header(step, health_os);
      cloud.begin(horizon);
      for (TimeMs t = 0; t < horizon;) {
        t = std::min<TimeMs>(t + step, horizon);
        cloud.advance_until(t);
        write_platform_health(cloud, t, health_os);
      }
      cloud.finish();
      std::cout << "wrote health snapshots to " << obs_opts.health_out
                << "\n";
    }

    TablePrinter table({"metric", "value"});
    table.add_row({"throughput T (game-seconds)",
                   TablePrinter::fmt(cloud.throughput(), 0)});
    double qos_s = 0, lat_sum = 0;
    int lat_n = 0;
    for (const auto& run : cloud.completed_runs()) {
      qos_s += ms_to_sec(run.qos_violation_ms);
      if (run.mean_latency_ms > 0) {
        lat_sum += run.mean_latency_ms;
        ++lat_n;
      }
    }
    table.add_row({"completed runs",
                   std::to_string(cloud.completed_runs().size())});
    table.add_row({"QoS violations (s)", TablePrinter::fmt(qos_s, 0)});
    table.add_row({"mean interaction latency (ms)",
                   lat_n ? TablePrinter::fmt(lat_sum / lat_n, 1) : "-"});
    std::size_t over = 0;
    for (const auto& up : cloud.utilization_log()) {
      if (up.max_dim_fraction > 0.95) ++over;
    }
    table.add_row(
        {"ticks above 95% limit",
         TablePrinter::fmt_pct(
             cloud.utilization_log().empty()
                 ? 0.0
                 : 100.0 * static_cast<double>(over) /
                       static_cast<double>(cloud.utilization_log().size()),
             1)});
    for (const auto& [name, gs] : cloud.game_stats()) {
      table.add_row({name + " runs / FPS ratio",
                     std::to_string(gs.completed) + " / " +
                         TablePrinter::fmt_pct(100 * gs.mean_fps_ratio, 1)});
    }
    for (const auto& row : cloud.slo_tracker().attainment()) {
      if (row.runs == 0) continue;
      table.add_row(
          {"SLO " + row.slo_class + " FPS / latency attained",
           TablePrinter::fmt_pct(row.fps_attainment_pct, 1) + " / " +
               TablePrinter::fmt_pct(row.latency_attainment_pct, 1)});
    }
    table.print(std::cout);
    if (!capture_out.empty()) {
      traffic::save_trace(recorder.trace(), capture_out);
      std::cout << "captured " << recorder.size() << " arrival(s) to "
                << capture_out << "\n";
    }
    obs::write_outputs(obs_opts);
    set_log_clock(nullptr);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
