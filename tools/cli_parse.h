// Strict numeric parsing for tool command lines.
//
// The tools used to run flag values through std::atoi + std::max(1, ...),
// which silently turned "--threads 0", "--threads -4" and "--threads abc"
// into 1. These helpers reject anything that is not a full, in-range
// number with a one-line error naming the flag, so typos fail loudly
// instead of quietly running a different experiment. They throw
// std::runtime_error; the tools' top-level catch prints it as
// "error: ..." and exits non-zero.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace cocg::tools {

/// A strictly positive decimal integer ("1" or more); rejects empty,
/// trailing garbage, zero, negatives, and overflow.
inline int parse_positive_int(const std::string& flag,
                              const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0') {
    throw std::runtime_error(flag + " expects a positive integer, got '" +
                             value + "'");
  }
  if (errno == ERANGE || v < 1 || v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(flag + " must be a positive integer in range, got '" +
                             value + "'");
  }
  return static_cast<int>(v);
}

/// A non-negative decimal integer for seeds; rejects non-numeric input
/// (strtoull's silent negative wraparound included).
inline std::uint64_t parse_u64(const std::string& flag,
                               const std::string& value) {
  errno = 0;
  char* end = nullptr;
  if (value.empty() || value[0] == '-') {
    throw std::runtime_error(flag + " expects a non-negative integer, got '" +
                             value + "'");
  }
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(flag + " expects a non-negative integer, got '" +
                             value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

/// A strictly positive real number; rejects non-numeric input, zero,
/// negatives, and non-finite values.
inline double parse_positive_double(const std::string& flag,
                                    const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == value.c_str() || *end != '\0' ||
      errno == ERANGE || !(v > 0.0) || v > std::numeric_limits<double>::max()) {
    throw std::runtime_error(flag + " expects a positive number, got '" +
                             value + "'");
  }
  return v;
}

}  // namespace cocg::tools
