// cocg_schedfuzz — deterministic schedule record/replay and the
// invariant-checking scheduler fuzzer (src/schedcheck).
//
//   cocg_schedfuzz record <out.sched> [scenario flags]
//   cocg_schedfuzz replay <in.sched> [--strict] [--report-out r.json]
//   cocg_schedfuzz fuzz [base.sched] [scenario flags] [--variants N]
//                       [--fuzz-seed S] [--max-mutations M]
//                       [--keep K] [--out-dir DIR]
//   cocg_schedfuzz minimize <in.sched> <out.sched> [--max-runs N]
//
// Scenario flags (record, and fuzz without a base schedule):
//   --shards N --threads N --runner lockstep|steal
//   --policy round_robin|power_of_two|region_affinity
//   --servers N --gpus N --minutes N --games a,b,c --rate R --seed S
//
// --fault double_host_window arms the planted bug (fuzzer validation).
//
// Replay is self-contained: the scenario is reconstructed from the
// schedule's meta block, so a failing artifact replays from the file
// alone. Exit codes: 0 clean, 2 usage/load error, 3 invariant violation
// (replay) or failing variants found (fuzz).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_parse.h"
#include "schedcheck/fault.h"
#include "schedcheck/fuzz.h"
#include "schedcheck/harness.h"
#include "schedcheck/minimize.h"
#include "schedcheck/schedule.h"

namespace {

using namespace cocg;

int usage(std::ostream& err) {
  err << "usage: cocg_schedfuzz <record|replay|fuzz|minimize> ...\n"
         "  record <out.sched> [scenario flags]\n"
         "  replay <in.sched> [--strict] [--report-out r.json]\n"
         "  fuzz [base.sched] [scenario flags] [--variants N]\n"
         "       [--fuzz-seed S] [--max-mutations M] [--keep K]\n"
         "       [--out-dir DIR]\n"
         "  minimize <in.sched> <out.sched> [--max-runs N]\n"
         "scenario flags: --shards N --threads N --runner lockstep|steal\n"
         "  --policy P --servers N --gpus N --minutes N --games a,b\n"
         "  --rate R --seed S   (--fault double_host_window plants the bug)\n"
         "exit: 0 clean, 2 usage/load error, 3 violation/failures found\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is(csv);
  while (std::getline(is, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

/// Consumes scenario flags from `args` (erasing what it takes); leaves
/// everything else for the subcommand parser.
void parse_scenario_flags(std::vector<std::string>& args,
                          schedcheck::Scenario& sc) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::runtime_error(a + " expects a value");
      }
      return args[++i];
    };
    if (a == "--shards") sc.shards = tools::parse_positive_int(a, next());
    else if (a == "--threads") sc.threads = tools::parse_positive_int(a, next());
    else if (a == "--runner") {
      const std::string v = next();
      if (!fleet::parse_runner_kind(v, sc.runner)) {
        throw std::runtime_error("unknown runner '" + v + "'");
      }
    } else if (a == "--policy") {
      const std::string v = next();
      const auto p = fleet::parse_router_policy(v);
      if (!p) throw std::runtime_error("unknown policy '" + v + "'");
      sc.policy = *p;
    } else if (a == "--servers") sc.servers = tools::parse_positive_int(a, next());
    else if (a == "--gpus") sc.gpus = tools::parse_positive_int(a, next());
    else if (a == "--minutes") sc.minutes = tools::parse_positive_int(a, next());
    else if (a == "--games") sc.games = split_csv(next());
    else if (a == "--rate") sc.arrivals_per_hour = tools::parse_positive_double(a, next());
    else if (a == "--seed") sc.seed = tools::parse_u64(a, next());
    else if (a == "--fault") {
      const std::string v = next();
      if (v == "double_host_window") {
        schedcheck::set_fault(schedcheck::Fault::kDoubleHostWindow);
      } else if (v == "none") {
        schedcheck::set_fault(schedcheck::Fault::kNone);
      } else {
        throw std::runtime_error("unknown fault '" + v + "'");
      }
    } else {
      rest.push_back(a);
    }
  }
  args = std::move(rest);
}

void print_stats(const schedcheck::ReplayStats& st, std::ostream& os) {
  os << "decisions=" << st.decisions << " forced=" << st.forced
     << " freerun=" << st.freerun << " divergences=" << st.divergences
     << " clamped=" << st.clamped << " unconsumed=" << st.unconsumed
     << " wall_points=" << st.wall_points << "\n";
}

int report_outcome(const schedcheck::RunOutcome& out, std::ostream& os) {
  print_stats(out.stats, os);
  if (out.aborted) {
    os << "INVARIANT VIOLATION\n" << schedcheck::describe(out.violations);
    return 3;
  }
  os << "run clean\n";
  return 0;
}

int cmd_record(std::vector<std::string> args) {
  schedcheck::Scenario sc;
  parse_scenario_flags(args, sc);
  if (args.size() != 1) return usage(std::cerr);
  const std::string out_path = args[0];

  schedcheck::RunOutcome out = schedcheck::record_run(sc);
  const int rc = report_outcome(out, std::cout);
  schedcheck::save_schedule(out.recorded, out_path);
  std::cout << "recorded " << out.recorded.total_records()
            << " decision(s) to " << out_path << "\n";
  return rc;
}

int cmd_replay(std::vector<std::string> args) {
  schedcheck::Scenario ignored;
  parse_scenario_flags(args, ignored);  // accepts --fault on replay
  bool strict = false;
  std::string report_out;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--strict") {
      strict = true;
    } else if (a == "--report-out") {
      if (i + 1 >= args.size()) return usage(std::cerr);
      report_out = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage(std::cerr);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 1) return usage(std::cerr);

  const schedcheck::Schedule schedule =
      schedcheck::load_schedule(positional[0]);
  const schedcheck::Scenario sc = schedcheck::scenario_from_meta(schedule);
  schedcheck::RunOutcome out = schedcheck::replay_run(sc, schedule, strict);
  const int rc = report_outcome(out, std::cout);
  if (!report_out.empty() && !out.aborted) {
    std::ofstream os(report_out);
    if (!os) throw std::runtime_error("cannot open " + report_out);
    os << out.report;
    std::cout << "wrote replay report to " << report_out << "\n";
  }
  return rc;
}

int cmd_fuzz(std::vector<std::string> args) {
  schedcheck::Scenario sc;
  parse_scenario_flags(args, sc);
  schedcheck::FuzzOptions opts;
  std::string out_dir = "schedfuzz-failures";
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::runtime_error(a + " expects a value");
      }
      return args[++i];
    };
    if (a == "--variants") opts.variants = tools::parse_positive_int(a, next());
    else if (a == "--fuzz-seed") opts.seed = tools::parse_u64(a, next());
    else if (a == "--max-mutations") opts.max_mutations = tools::parse_positive_int(a, next());
    else if (a == "--keep") opts.keep_failures = tools::parse_positive_int(a, next());
    else if (a == "--out-dir") out_dir = next();
    else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage(std::cerr);
    } else positional.push_back(a);
  }
  if (positional.size() > 1) return usage(std::cerr);

  schedcheck::Schedule base;
  if (positional.size() == 1) {
    base = schedcheck::load_schedule(positional[0]);
    sc = schedcheck::scenario_from_meta(base);
    std::cout << "base schedule: " << positional[0] << " ("
              << base.total_records() << " records)\n";
  } else {
    std::cout << "recording base schedule...\n";
    schedcheck::RunOutcome rec = schedcheck::record_run(sc);
    if (rec.aborted) {
      std::cout << "natural run violates invariants — nothing to fuzz:\n"
                << schedcheck::describe(rec.violations);
      return 3;
    }
    base = rec.recorded;
    std::cout << "recorded " << base.total_records() << " decision(s)\n";
  }

  const schedcheck::FuzzResult result = schedcheck::fuzz(
      base, opts, [&sc](const schedcheck::Schedule& variant) {
        return schedcheck::replay_run(sc, variant);
      });
  std::cout << "fuzz: " << result.variants_run << " variant(s), "
            << result.mutations_applied << " mutation(s), "
            << result.failures << " failure(s)\n";
  if (result.failures == 0) return 0;

  std::filesystem::create_directories(out_dir);
  for (const auto& f : result.kept) {
    const std::string path =
        out_dir + "/variant-" + std::to_string(f.variant) + ".sched";
    schedcheck::save_schedule(f.schedule, path);
    std::cout << path << ":\n" << schedcheck::describe(f.violations);
  }
  std::cout << "wrote " << result.kept.size() << " failing schedule(s) to "
            << out_dir << "/\n";
  return 3;
}

int cmd_minimize(std::vector<std::string> args) {
  schedcheck::Scenario ignored;
  parse_scenario_flags(args, ignored);  // accepts --fault
  schedcheck::MinimizeOptions opts;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--max-runs") {
      if (i + 1 >= args.size()) return usage(std::cerr);
      opts.max_runs = tools::parse_positive_int(a, args[++i]);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage(std::cerr);
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return usage(std::cerr);

  const schedcheck::Schedule failing =
      schedcheck::load_schedule(positional[0]);
  const schedcheck::Scenario sc = schedcheck::scenario_from_meta(failing);

  // The failure of interest: replay aborts with the same leading
  // invariant as the input schedule does.
  schedcheck::RunOutcome probe = schedcheck::replay_run(sc, failing);
  if (!probe.aborted) {
    std::cerr << "error: " << positional[0]
              << " replays clean — nothing to minimize\n";
    return 2;
  }
  const std::string invariant = probe.violations.front().invariant;
  std::cout << "minimizing against invariant '" << invariant << "' ("
            << failing.total_records() << " records)\n";

  const schedcheck::MinimizeResult res = schedcheck::minimize(
      failing,
      [&sc, &invariant](const schedcheck::Schedule& candidate) {
        const schedcheck::RunOutcome out =
            schedcheck::replay_run(sc, candidate);
        return out.aborted &&
               out.violations.front().invariant == invariant;
      },
      opts);
  schedcheck::save_schedule(res.schedule, positional[1]);
  std::cout << "minimized to " << res.schedule.total_records()
            << " record(s) in " << res.runs << " run(s)"
            << (res.minimal ? " (1-minimal)" : " (budget exhausted)")
            << "; wrote " << positional[1] << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr);
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "record") return cmd_record(std::move(args));
    if (cmd == "replay") return cmd_replay(std::move(args));
    if (cmd == "fuzz") return cmd_fuzz(std::move(args));
    if (cmd == "minimize") return cmd_minimize(std::move(args));
    std::cerr << "unknown command: " << cmd << "\n";
    return usage(std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
