// cocg_fleet — sharded multi-cluster simulation from the command line.
//
//   cocg_fleet [--shards K] [--threads T] [--policy rr|ll|p2c|region]
//              [--servers N] [--gpus G] [--arrivals-per-hour X]
//              [--minutes M] [--seed S] [--scheduler cocg|vbp|gaugur|improved]
//              [--games "A,B,..."]
//              [--trace-in t.trace] [--replay-reroute]
//              [--capture-out t.trace]
//              [--models-in dir] [--models-out dir] [--retrain-per-shard]
//              [--report-out r.json] [--health-interval-s S]
//              [--metrics-out m.json] [--events-out e.jsonl]
//              [--trace-out t.json] [--health-out h.jsonl]
//              [--obs-out dir]
//
// Partitions N servers round-robin into K shards (each its own engine +
// platform + scheduler), feeds one global open-loop Poisson arrival
// stream per game through the router, runs the shards in lockstep epochs
// on T threads, and prints the merged fleet report.
//
// Models are trained ONCE and shared across shards through a
// core::ModelBank (every shard aliases the same immutable compiled
// forests); --models-in skips training entirely by loading bundles
// written by `cocg_profiler train-suite` or --models-out.
// --retrain-per-shard restores the legacy K-independent-retrains path —
// byte-identical aggregate results, K× the training cost (the
// determinism tests rely on that equivalence). The observability flags
// dump the *merged* per-shard registries, the time-ordered event JSONL
// (with a shard field), and a Perfetto trace with one process group per
// shard.
//
// Capture/replay (docs/traffic.md): --capture-out records the run's
// arrival stream plus router verdicts as a traffic trace; --trace-in
// replays a trace INSTEAD of the internal Poisson sources (recorded
// verdicts honored, so replaying a capture reproduces the original
// report byte-for-byte at any --threads); --replay-reroute clears the
// verdicts so the configured --policy re-routes the identical stream —
// how two router policies are compared on the same traffic. Note
// --trace-out is the *Perfetto* trace (obs flag), not the traffic trace.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "core/model_bank.h"
#include "core/offline.h"
#include "core/scheduler_factory.h"
#include "fleet/fleet.h"
#include "game/library.h"
#include "obs/cli.h"
#include "cli_parse.h"

using namespace cocg;

namespace {

int usage() {
  std::cerr
      << "usage: cocg_fleet [options]\n"
         "  --shards K             number of shards (default 2)\n"
         "  --threads T            runner threads (default = shards)\n"
         "  --runner R             lockstep | steal (default lockstep);"
         " identical results, different scheduling\n"
         "  --policy P             rr | ll | p2c | region (default ll)\n"
         "  --servers N            total servers, split round-robin"
         " (default 2*shards)\n"
         "  --gpus G               GPUs per server (default 2)\n"
         "  --arrivals-per-hour X  per-game Poisson rate (default 30)\n"
         "  --minutes M            horizon in simulated minutes"
         " (default 30)\n"
         "  --seed S               fleet seed (default 42)\n"
         "  --scheduler NAME       cocg | vbp | gaugur | improved"
         " (default cocg)\n"
         "  --games \"A,B\"          comma-separated subset of the paper"
         " suite (default: all)\n"
         "  --trace-in FILE        replay a traffic trace instead of the"
         " internal Poisson sources\n"
         "  --replay-reroute       ignore recorded router verdicts; let"
         " --policy re-route the stream\n"
         "  --capture-out FILE     record the arrival stream + router"
         " verdicts as a traffic trace\n"
         "  --health-interval-s S  seconds between health snapshots"
         " (default 30)\n"
         "  --models-in DIR        load trained bundles instead of"
         " training\n"
         "  --models-out DIR       save the trained bundles for reuse\n"
         "  --retrain-per-shard    legacy path: every shard retrains"
         " (same results, K x cost)\n"
         "  --report-out FILE      write the merged report as canonical"
         " JSON\n"
      << obs::cli_usage_with_health();
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    const obs::CliOptions obs_opts =
        obs::strip_cli_flags(args, /*with_health=*/true);

    int shards = 2;
    int threads = 0;  // 0 → match shards
    std::string runner_name = "lockstep";
    std::string policy_name = "ll";
    int servers = 0;  // 0 → 2 per shard
    int gpus = 2;
    double arrivals_per_hour = 30.0;
    int minutes = 30;
    std::uint64_t seed = 42;
    std::string sched_name = "cocg";
    std::string games_csv;
    std::string models_in, models_out, report_out;
    std::string trace_in, capture_out;
    bool replay_reroute = false;
    bool retrain_per_shard = false;
    int health_interval_s = 30;

    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= args.size()) {
          throw std::runtime_error("missing value for " + a);
        }
        return args[++i];
      };
      if (a == "--shards") shards = tools::parse_positive_int(a, next());
      else if (a == "--threads") threads = tools::parse_positive_int(a, next());
      else if (a == "--runner") runner_name = next();
      else if (a == "--policy") policy_name = next();
      else if (a == "--servers") servers = tools::parse_positive_int(a, next());
      else if (a == "--gpus") gpus = tools::parse_positive_int(a, next());
      else if (a == "--arrivals-per-hour") arrivals_per_hour = tools::parse_positive_double(a, next());
      else if (a == "--minutes") minutes = tools::parse_positive_int(a, next());
      else if (a == "--seed") seed = tools::parse_u64(a, next());
      else if (a == "--scheduler") sched_name = next();
      else if (a == "--games") games_csv = next();
      else if (a == "--models-in") models_in = next();
      else if (a == "--models-out") models_out = next();
      else if (a == "--retrain-per-shard") retrain_per_shard = true;
      else if (a == "--report-out") report_out = next();
      else if (a == "--trace-in") trace_in = next();
      else if (a == "--capture-out") capture_out = next();
      else if (a == "--replay-reroute") replay_reroute = true;
      else if (a == "--health-interval-s") health_interval_s = tools::parse_positive_int(a, next());
      else if (a == "--help" || a == "-h") return usage();
      else {
        std::cerr << "unknown flag: " << a << "\n";
        return usage();
      }
    }
    const auto policy = fleet::parse_router_policy(policy_name);
    if (!policy) {
      std::cerr << "unknown policy: " << policy_name << "\n";
      return usage();
    }
    fleet::RunnerKind runner = fleet::RunnerKind::kLockstep;
    if (!fleet::parse_runner_kind(runner_name, runner)) {
      std::cerr << "unknown runner: " << runner_name << "\n";
      return usage();
    }
    if (threads == 0) threads = shards;
    if (servers == 0) servers = 2 * shards;

    static const std::vector<game::GameSpec> suite = game::paper_suite();
    std::vector<const game::GameSpec*> games;
    if (games_csv.empty()) {
      for (const auto& g : suite) games.push_back(&g);
    } else {
      for (const auto& name : split_csv(games_csv)) {
        const game::GameSpec* found = nullptr;
        for (const auto& g : suite) {
          if (g.name == name) found = &g;
        }
        if (found == nullptr) {
          std::cerr << "unknown game: " << name << "\n";
          return usage();
        }
        games.push_back(found);
      }
    }

    core::OfflineConfig ocfg;
    ocfg.profiling_runs = 8;
    ocfg.corpus_runs = 40;
    ocfg.seed = seed;

    core::ModelBank bank;
    if (!models_in.empty()) {
      bank = core::ModelBank::load_dir(models_in);
      std::cout << "loaded " << bank.size() << " model bundle(s) from "
                << models_in << "\n";
    } else if (!retrain_per_shard || !models_out.empty()) {
      std::cout << "training models once (shared across shards)...\n";
      for (const auto& [name, tg] : core::train_suite(suite, ocfg)) {
        bank.add_trained(tg);
      }
    }
    if (!models_out.empty()) {
      const auto paths = bank.save_dir(models_out);
      std::cout << "wrote " << paths.size() << " bundle(s) to "
                << models_out << "\n";
    }
    if (retrain_per_shard) {
      std::cout << "training models (once per shard, same seed)...\n";
    }

    fleet::FleetConfig fcfg;
    fcfg.shards = shards;
    fcfg.threads = threads;
    fcfg.runner = runner;
    fcfg.policy = *policy;
    fcfg.seed = seed;
    fleet::Fleet sim(fcfg, [&](int) {
      if (retrain_per_shard) {
        return core::make_named_scheduler(sched_name,
                                          core::train_suite(suite, ocfg));
      }
      return core::make_named_scheduler(sched_name, bank, suite);
    });

    hw::ServerSpec spec;
    spec.num_gpus = gpus;
    for (int i = 0; i < servers; ++i) sim.add_server(spec);
    if (trace_in.empty()) {
      for (const auto* g : games) {
        sim.add_global_source({g, arrivals_per_hour, 16});
      }
    } else {
      const traffic::Trace trace = traffic::load_trace(trace_in);
      const std::size_t n = sim.add_trace_arrivals(
          trace, games, /*use_recorded_routing=*/!replay_reroute);
      std::cout << "replaying " << n << " arrival(s) from " << trace_in
                << (replay_reroute ? " (re-routed by policy)"
                                   : " (recorded routing)")
                << "\n";
    }
    traffic::TraceRecorder recorder;
    if (!capture_out.empty()) {
      recorder.set_meta("capture", "cocg_fleet");
      recorder.set_meta("seed", std::to_string(seed));
      recorder.set_meta("policy", fleet::router_policy_name(*policy));
      sim.enable_capture(&recorder);
    }

    std::ofstream health_os;
    if (!obs_opts.health_out.empty()) {
      health_os.open(obs_opts.health_out);
      if (!health_os) {
        throw std::runtime_error("cannot open " + obs_opts.health_out);
      }
      const auto health_period =
          static_cast<DurationMs>(health_interval_s) * 1000;
      obs::write_health_header(health_period, health_os);
      sim.enable_health_stream(&health_os, health_period);
    }

    std::cout << "running " << shards << " shard(s) x " << servers
              << " server(s) under " << sched_name << ", policy "
              << fleet::router_policy_name(*policy) << ", " << threads
              << " thread(s), " << fleet::runner_kind_name(runner)
              << " runner, " << minutes << " min...\n";
    const auto wall0 = std::chrono::steady_clock::now();
    const DurationMs horizon = static_cast<DurationMs>(minutes) * 60 * 1000;
    sim.run(horizon);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();

    const auto rep = sim.report();
    TablePrinter table({"metric", "value"});
    table.add_row({"simulated minutes", std::to_string(minutes)});
    table.add_row({"wall seconds", TablePrinter::fmt(wall_s, 2)});
    table.add_row({"sim-seconds per wall-second",
                   TablePrinter::fmt(ms_to_sec(horizon) / wall_s, 0)});
    table.add_row({"arrivals generated", std::to_string(rep.arrivals)});
    table.add_row({"completed runs", std::to_string(rep.completed)});
    table.add_row({"throughput T (game-seconds)",
                   TablePrinter::fmt(rep.throughput, 0)});
    table.add_row({"QoS violations (s)",
                   TablePrinter::fmt(rep.qos_violation_s, 0)});
    table.add_row({"mean admission wait (s)",
                   TablePrinter::fmt(rep.mean_wait_s, 1)});
    if (runner == fleet::RunnerKind::kSteal) {
      const auto& es = sim.executor_stats();
      table.add_row({"executor epochs run", std::to_string(es.jobs_run)});
      table.add_row({"executor steals / syncs",
                     std::to_string(es.steals) + " / " +
                         std::to_string(es.syncs)});
    }
    table.print(std::cout);

    TablePrinter per_shard({"shard", "servers", "routed", "completed",
                            "T (game-s)", "queued@end", "running@end"});
    for (const auto& row : rep.shards) {
      per_shard.add_row({std::to_string(row.shard),
                         std::to_string(row.servers),
                         std::to_string(row.routed),
                         std::to_string(row.completed),
                         TablePrinter::fmt(row.throughput, 0),
                         std::to_string(row.queued_end),
                         std::to_string(row.running_end)});
    }
    per_shard.print(std::cout);

    TablePrinter slo_table({"SLO class", "runs", "FPS attained",
                            "latency attained"});
    for (const auto& row : rep.slo) {
      slo_table.add_row({row.slo_class, std::to_string(row.runs),
                         TablePrinter::fmt_pct(row.fps_attainment_pct, 1),
                         TablePrinter::fmt_pct(row.latency_attainment_pct,
                                               1)});
    }
    slo_table.print(std::cout);

    if (rep.regions.size() > 1) {
      TablePrinter per_region(
          {"region", "routed", "completed", "mean FPS ratio"});
      for (const auto& row : rep.regions) {
        per_region.add_row({row.region, std::to_string(row.routed),
                            std::to_string(row.completed),
                            TablePrinter::fmt(row.mean_fps_ratio, 3)});
      }
      per_region.print(std::cout);
    }

    if (!capture_out.empty()) {
      traffic::save_trace(recorder.trace(), capture_out);
      std::cout << "captured " << recorder.size() << " arrival(s) to "
                << capture_out << "\n";
    }

    if (!obs_opts.health_out.empty()) {
      std::cout << "wrote health snapshots to " << obs_opts.health_out
                << "\n";
    }
    if (!report_out.empty()) {
      std::ofstream os(report_out);
      if (!os) throw std::runtime_error("cannot open " + report_out);
      fleet::write_report_json(rep, os, sim.executor_stats());
      std::cout << "wrote merged report to " << report_out << "\n";
    }

    // Merged observability outputs (the global-domain sinks the generic
    // obs::write_outputs would dump stay empty — shards record into their
    // own domains).
    if (!obs_opts.metrics_out.empty()) {
      obs::MetricsRegistry merged;
      sim.merge_metrics(merged);
      std::ofstream os(obs_opts.metrics_out);
      if (!os) throw std::runtime_error("cannot open " + obs_opts.metrics_out);
      merged.write_json(os);
      std::cout << "wrote merged metrics to " << obs_opts.metrics_out << "\n";
    }
    if (!obs_opts.events_out.empty()) {
      std::ofstream os(obs_opts.events_out);
      if (!os) throw std::runtime_error("cannot open " + obs_opts.events_out);
      sim.write_merged_events_jsonl(os);
      std::cout << "wrote merged events to " << obs_opts.events_out << "\n";
    }
    if (!obs_opts.trace_out.empty()) {
      std::ofstream os(obs_opts.trace_out);
      if (!os) throw std::runtime_error("cannot open " + obs_opts.trace_out);
      sim.write_merged_trace(os);
      std::cout << "wrote merged trace to " << obs_opts.trace_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
