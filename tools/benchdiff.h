// benchdiff — compare two BENCH_<experiment>.json results files.
//
// Every bench binary writes a flat results document (bench_util.h
// BenchJson): top-level scalar metrics plus a "rows" array of
// per-configuration records. benchdiff loads a candidate document and a
// baseline (a file, or a directory searched for the file whose
// "experiment" field matches), lines the rows up by index, sanity-checks
// that the configuration labels (all shared string fields) agree, and
// reports candidate/baseline ratios for every shared numeric field.
//
// Gated metrics — by default every key starting with "ticks_per_sec" —
// are throughput-style higher-is-better numbers: a gated ratio below
// 1 - threshold is a regression and flips the exit code to 1. Everything
// else is informational. CI runs this against bench/baselines/ on the
// uploaded BENCH artifacts (see .github/workflows), and
// tests/tools/test_benchdiff.cpp drives run_benchdiff_cli directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace cocg::tools {

struct BenchDiffOptions {
  /// Regression when a gated ratio < 1 - threshold (default 10%).
  double threshold = 0.10;
  /// Key prefixes of gated (higher-is-better) metrics.
  std::vector<std::string> gate_prefixes = {"ticks_per_sec"};
};

/// One compared numeric field.
struct MetricDiff {
  std::string where;  ///< "top" or "rows[i]"
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 1.0;  ///< candidate / baseline (1.0 when baseline == 0)
  bool gated = false;
  bool regression = false;
};

/// Full comparison of two parsed BENCH documents.
struct BenchDiff {
  std::string experiment;
  std::vector<MetricDiff> metrics;
  /// Structural complaints (row-count mismatch, label mismatch). A
  /// non-empty list means some rows were skipped, not that the diff
  /// failed.
  std::vector<std::string> warnings;
  bool any_regression = false;
};

/// Compare candidate against baseline. Both must be objects in the
/// bench_util.h shape; rows are matched by index and skipped (with a
/// warning) when their shared string fields disagree.
BenchDiff diff_bench(const obs::JsonValue& baseline,
                     const obs::JsonValue& candidate,
                     const BenchDiffOptions& opts = {});

/// Human-readable ratio table (one line per metric, gated rows marked,
/// regressions flagged).
void write_diff_table(const BenchDiff& diff, std::ostream& os);

/// Resolve `baseline_path` to a concrete file: returned unchanged for a
/// regular file; for a directory, the *.json file inside whose
/// "experiment" field equals `experiment` (empty string when none found).
std::string resolve_baseline(const std::string& baseline_path,
                             const std::string& experiment);

/// The cocg_benchdiff CLI: args excludes argv[0]. Exit codes: 0 = no
/// gated regression, 1 = regression found, 2 = usage/parse error.
int run_benchdiff_cli(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err);

}  // namespace cocg::tools
