// cocg_trafficgen — generate production-shaped traffic traces.
//
//   cocg_trafficgen [--pattern poisson|diurnal|flash|failover]
//                   [--minutes M] [--arrivals-per-hour X] [--seed S]
//                   [--games "A,B,..."] [--regions "eu,us,..."]
//                   [--player-pool N]
//                   [--diurnal-amplitude A] [--diurnal-period-min P]
//                   [--flash-game NAME] [--flash-start-min T]
//                   [--flash-ramp-min R] [--flash-hold-min H]
//                   [--flash-multiplier X]
//                   [--failover-from R1] [--failover-to R2]
//                   [--failover-at-min T] [--failover-ramp-min R]
//                   --out t.trace
//
// Writes a versioned text trace (docs/traffic.md) that cocg_fleet
// --trace-in or cocg_colocate --trace-in can replay. Same flags + same
// seed → byte-identical file. The summary table breaks the generated
// stream down per game and per region so recipe mistakes (a flash crowd
// on the wrong game, a failover from an empty region) are visible before
// a long replay is launched.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "game/library.h"
#include "traffic/generator.h"
#include "traffic/trace.h"

using namespace cocg;

namespace {

int usage() {
  std::cerr
      << "usage: cocg_trafficgen --out FILE [options]\n"
         "  --pattern P            poisson | diurnal | flash | failover"
         " (default poisson)\n"
         "  --minutes M            trace horizon in minutes (default 60)\n"
         "  --arrivals-per-hour X  aggregate baseline rate (default 600)\n"
         "  --seed S               generator seed (default 42)\n"
         "  --games \"A,B\"          comma-separated subset of the paper"
         " suite (default: all)\n"
         "  --regions \"eu,us\"      region mix (default: single global"
         " region)\n"
         "  --player-pool N        player id pool size (default 10000)\n"
         "  --diurnal-amplitude A  day/night swing in [0,1) (default 0.6)\n"
         "  --diurnal-period-min P cycle length in minutes (default 1440)\n"
         "  --flash-game NAME      game that spikes (default: first)\n"
         "  --flash-start-min T    spike start (default 0)\n"
         "  --flash-ramp-min R     ramp up/down length (default 5)\n"
         "  --flash-hold-min H     plateau length (default 20)\n"
         "  --flash-multiplier X   peak share multiplier (default 8)\n"
         "  --failover-from R      evacuating region (default: first)\n"
         "  --failover-to R        receiving region (default: second)\n"
         "  --failover-at-min T    evacuation start (default 0)\n"
         "  --failover-ramp-min R  shift duration (default 5)\n"
         "  --out FILE             where to write the trace (required)\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);

    traffic::GeneratorConfig cfg;
    int minutes = 60;
    std::string pattern_name = "poisson";
    std::string games_csv, regions_csv, out_path;
    std::string flash_game_name, failover_from_name, failover_to_name;
    double diurnal_period_min = 24.0 * 60.0;
    double flash_start_min = 0.0, flash_ramp_min = 5.0, flash_hold_min = 20.0;
    double failover_at_min = 0.0, failover_ramp_min = 5.0;

    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= args.size()) {
          throw std::runtime_error("missing value for " + a);
        }
        return args[++i];
      };
      if (a == "--pattern") pattern_name = next();
      else if (a == "--minutes") minutes = std::max(1, std::atoi(next().c_str()));
      else if (a == "--arrivals-per-hour") cfg.arrivals_per_hour = std::atof(next().c_str());
      else if (a == "--seed") cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
      else if (a == "--games") games_csv = next();
      else if (a == "--regions") regions_csv = next();
      else if (a == "--player-pool") cfg.player_pool = std::max(1, std::atoi(next().c_str()));
      else if (a == "--diurnal-amplitude") cfg.diurnal_amplitude = std::atof(next().c_str());
      else if (a == "--diurnal-period-min") diurnal_period_min = std::atof(next().c_str());
      else if (a == "--flash-game") flash_game_name = next();
      else if (a == "--flash-start-min") flash_start_min = std::atof(next().c_str());
      else if (a == "--flash-ramp-min") flash_ramp_min = std::atof(next().c_str());
      else if (a == "--flash-hold-min") flash_hold_min = std::atof(next().c_str());
      else if (a == "--flash-multiplier") cfg.flash_multiplier = std::atof(next().c_str());
      else if (a == "--failover-from") failover_from_name = next();
      else if (a == "--failover-to") failover_to_name = next();
      else if (a == "--failover-at-min") failover_at_min = std::atof(next().c_str());
      else if (a == "--failover-ramp-min") failover_ramp_min = std::atof(next().c_str());
      else if (a == "--out") out_path = next();
      else if (a == "--help" || a == "-h") return usage();
      else {
        std::cerr << "unknown flag: " << a << "\n";
        return usage();
      }
    }
    if (out_path.empty()) {
      std::cerr << "--out is required\n";
      return usage();
    }
    cfg.pattern = traffic::parse_pattern(pattern_name);
    cfg.duration_ms = static_cast<DurationMs>(minutes) * 60 * 1000;
    cfg.diurnal_period_ms =
        static_cast<DurationMs>(diurnal_period_min * 60.0 * 1000.0);
    cfg.flash_start_ms =
        static_cast<TimeMs>(flash_start_min * 60.0 * 1000.0);
    cfg.flash_ramp_ms =
        static_cast<DurationMs>(flash_ramp_min * 60.0 * 1000.0);
    cfg.flash_hold_ms =
        static_cast<DurationMs>(flash_hold_min * 60.0 * 1000.0);
    cfg.failover_at_ms =
        static_cast<TimeMs>(failover_at_min * 60.0 * 1000.0);
    cfg.failover_ramp_ms =
        static_cast<DurationMs>(failover_ramp_min * 60.0 * 1000.0);

    static const std::vector<game::GameSpec> suite = game::paper_suite();
    if (games_csv.empty()) {
      for (const auto& g : suite) cfg.games.push_back(&g);
    } else {
      for (const auto& name : split_csv(games_csv)) {
        const game::GameSpec* found = nullptr;
        for (const auto& g : suite) {
          if (g.name == name) found = &g;
        }
        if (found == nullptr) {
          std::cerr << "unknown game: " << name << "\n";
          return usage();
        }
        cfg.games.push_back(found);
      }
    }
    cfg.regions = split_csv(regions_csv);

    auto game_index = [&](const std::string& name,
                          const char* flag) -> std::size_t {
      for (std::size_t g = 0; g < cfg.games.size(); ++g) {
        if (cfg.games[g]->name == name) return g;
      }
      throw std::runtime_error(std::string(flag) + ": " + name +
                               " is not in --games");
    };
    auto region_index = [&](const std::string& name,
                            const char* flag) -> std::size_t {
      for (std::size_t r = 0; r < cfg.regions.size(); ++r) {
        if (cfg.regions[r] == name) return r;
      }
      throw std::runtime_error(std::string(flag) + ": " + name +
                               " is not in --regions");
    };
    if (!flash_game_name.empty()) {
      cfg.flash_game = game_index(flash_game_name, "--flash-game");
    }
    if (!failover_from_name.empty()) {
      cfg.failover_from = region_index(failover_from_name, "--failover-from");
    }
    if (!failover_to_name.empty()) {
      cfg.failover_to = region_index(failover_to_name, "--failover-to");
    }

    const traffic::Trace trace = traffic::generate_trace(cfg);
    traffic::save_trace(trace, out_path);

    std::cout << "wrote " << trace.events.size() << " arrival(s) ["
              << traffic::pattern_name(cfg.pattern) << ", " << minutes
              << " min, seed " << cfg.seed << "] to " << out_path << "\n";

    std::vector<std::size_t> per_game(trace.games.size(), 0);
    std::vector<std::size_t> per_region(trace.regions.size(), 0);
    for (const auto& e : trace.events) {
      ++per_game[e.game];
      ++per_region[e.region];
    }
    TablePrinter games_table({"game", "category", "arrivals"});
    for (std::size_t g = 0; g < trace.games.size(); ++g) {
      games_table.add_row({trace.games[g].name,
                           game::category_name(trace.games[g].category),
                           std::to_string(per_game[g])});
    }
    games_table.print(std::cout);
    if (trace.regions.size() > 1) {
      TablePrinter regions_table({"region", "arrivals"});
      for (std::size_t r = 0; r < trace.regions.size(); ++r) {
        regions_table.add_row(
            {trace.regions[r], std::to_string(per_region[r])});
      }
      regions_table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
